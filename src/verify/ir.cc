#include "verify/ir.hh"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <sstream>

#include "base/graph.hh"

namespace fireaxe::verify {

using firrtl::Circuit;
using firrtl::Expr;
using firrtl::ExprKind;
using firrtl::ExprPtr;
using firrtl::Module;
using firrtl::PortDir;
using firrtl::SignalInfo;
using firrtl::SignalKind;

namespace {

bool
isSinkKind(SignalKind kind)
{
    switch (kind) {
      case SignalKind::OutPort:
      case SignalKind::Wire:
      case SignalKind::Reg:
      case SignalKind::InstIn:
      case SignalKind::MemRAddr:
      case SignalKind::MemWAddr:
      case SignalKind::MemWData:
      case SignalKind::MemWEn:
        return true;
      default:
        return false;
    }
}

bool
isSourceKind(SignalKind kind)
{
    switch (kind) {
      case SignalKind::InPort:
      case SignalKind::OutPort:
      case SignalKind::Wire:
      case SignalKind::Reg:
      case SignalKind::InstOut:
      case SignalKind::MemRData:
        return true;
      default:
        return false;
    }
}

/** Effective width of an expression with Ref widths resolved against
 *  the module; 0 when any leaf is unresolvable (check is skipped). */
unsigned
exprWidth(const Circuit &circuit, const Module &mod, const ExprPtr &e)
{
    switch (e->kind) {
      case ExprKind::Ref: {
        if (e->width)
            return e->width;
        return mod.resolve(circuit, e->name).width;
      }
      case ExprKind::Literal:
        return e->width;
      case ExprKind::UnOp: {
        unsigned w = exprWidth(circuit, mod, e->args[0]);
        return w ? firrtl::inferUnOpWidth(e->unOp, w) : 0;
      }
      case ExprKind::BinOp: {
        unsigned wa = exprWidth(circuit, mod, e->args[0]);
        unsigned wb = exprWidth(circuit, mod, e->args[1]);
        return (wa && wb) ? firrtl::inferBinOpWidth(e->binOp, wa, wb)
                          : 0;
      }
      case ExprKind::Mux: {
        unsigned wt = exprWidth(circuit, mod, e->args[1]);
        unsigned wf = exprWidth(circuit, mod, e->args[2]);
        return (wt && wf) ? std::max(wt, wf) : 0;
      }
      case ExprKind::Bits:
        return e->hi - e->lo + 1;
      case ExprKind::Cat: {
        unsigned wa = exprWidth(circuit, mod, e->args[0]);
        unsigned wb = exprWidth(circuit, mod, e->args[1]);
        return (wa && wb) ? wa + wb : 0;
      }
    }
    return 0;
}

/** Modules reachable from the top, or every module when the top is
 *  missing (so a broken circuit still gets per-module findings). */
std::vector<const Module *>
reachableModules(const Circuit &circuit)
{
    std::vector<const Module *> out;
    const Module *top = circuit.findModule(circuit.topName);
    if (!top) {
        for (const auto &[_, m] : circuit.modules)
            out.push_back(&m);
        return out;
    }
    std::set<std::string> seen;
    std::deque<const Module *> work{top};
    seen.insert(top->name);
    while (!work.empty()) {
        const Module *m = work.front();
        work.pop_front();
        out.push_back(m);
        for (const auto &inst : m->instances) {
            const Module *child = circuit.findModule(inst.moduleName);
            if (child && seen.insert(child->name).second)
                work.push_back(child);
        }
    }
    return out;
}

void
checkModuleStructure(const Circuit &circuit, const Module &mod,
                     Report &report, const std::string &partition)
{
    auto loc = [&](const std::string &sig) {
        return SourceLoc{partition, mod.name, sig};
    };

    // IR008: unique names across all signal namespaces.
    std::set<std::string> names;
    auto claim = [&](const std::string &n, const char *what) {
        if (!names.insert(n).second) {
            report.add("IR008", Severity::Error,
                       std::string("duplicate ") + what + " name",
                       loc(n));
        }
    };
    for (const auto &p : mod.ports)
        claim(p.name, "port");
    for (const auto &w : mod.wires)
        claim(w.name, "wire");
    for (const auto &r : mod.regs)
        claim(r.name, "reg");
    for (const auto &m : mod.mems)
        claim(m.name, "mem");
    for (const auto &i : mod.instances)
        claim(i.name, "instance");

    // Connects: IR006 (bad sink/source), IR001 (multiple drivers),
    // IR002 (truncating connect).
    std::set<std::string> driven;
    for (const auto &c : mod.connects) {
        SignalInfo lhs = mod.resolve(circuit, c.lhs);
        if (!isSinkKind(lhs.kind)) {
            report.add("IR006", Severity::Error,
                       "connect sink is not a drivable signal",
                       loc(c.lhs));
            continue;
        }
        if (!driven.insert(c.lhs).second) {
            report.add("IR001", Severity::Error,
                       "signal has multiple drivers", loc(c.lhs));
        }
        std::vector<std::string> refs;
        collectRefs(c.rhs, refs);
        bool refs_ok = true;
        for (const auto &r : refs) {
            SignalInfo src = mod.resolve(circuit, r);
            if (!isSourceKind(src.kind)) {
                report.add("IR006", Severity::Error,
                           "expression reads a non-readable signal "
                           "(driving '" + c.lhs + "')",
                           loc(r));
                refs_ok = false;
            }
        }
        if (refs_ok && lhs.width) {
            unsigned rhs_width = exprWidth(circuit, mod, c.rhs);
            if (rhs_width > lhs.width) {
                std::ostringstream msg;
                msg << "connect truncates a " << rhs_width
                    << "-bit expression into a " << lhs.width
                    << "-bit sink";
                report.add("IR002", Severity::Error, msg.str(),
                           loc(c.lhs));
            }
        }
    }

    // IR003: required signals that are never driven.
    auto requireDriven = [&](const std::string &n, const char *what) {
        if (!driven.count(n)) {
            report.add("IR003", Severity::Error,
                       std::string(what) + " is never driven", loc(n));
        }
    };
    for (const auto &p : mod.ports)
        if (p.dir == PortDir::Output)
            requireDriven(p.name, "output port");
    for (const auto &w : mod.wires)
        requireDriven(w.name, "wire");
    for (const auto &inst : mod.instances) {
        const Module *child = circuit.findModule(inst.moduleName);
        if (!child)
            continue; // reported as IR007 by the hierarchy check
        for (const auto &p : child->ports)
            if (p.dir == PortDir::Input)
                requireDriven(inst.name + "." + p.name,
                              "instance input");
    }
    for (const auto &m : mod.mems)
        requireDriven(m.name + ".raddr", "memory read address");

    // IR006: ready-valid annotations naming unknown ports.
    for (const auto &rv : mod.rvBundles) {
        auto check = [&](const std::string &pn) {
            if (!mod.findPort(pn)) {
                report.add("IR006", Severity::Error,
                           "ready-valid bundle '" + rv.name +
                               "' names an unknown port",
                           loc(pn));
            }
        };
        check(rv.validPort);
        check(rv.readyPort);
        for (const auto &d : rv.dataPorts)
            check(d);
    }
}

} // namespace

bool
checkCircuitStructure(const Circuit &circuit, Report &report,
                      const std::string &partition)
{
    size_t errors_before = report.count(Severity::Error);

    // IR007: hierarchy well-formedness. Everything downstream
    // (resolve, topoOrder, CombDepAnalysis) assumes these hold, so a
    // violation ends the pass for this circuit.
    bool hierarchy_ok = true;
    if (!circuit.findModule(circuit.topName)) {
        report.add("IR007", Severity::Error,
                   "top module '" + circuit.topName + "' is not defined",
                   {partition, circuit.topName, ""});
        hierarchy_ok = false;
    }
    for (const auto &[_, mod] : circuit.modules) {
        for (const auto &inst : mod.instances) {
            if (!circuit.findModule(inst.moduleName)) {
                report.add("IR007", Severity::Error,
                           "instance of undefined module '" +
                               inst.moduleName + "'",
                           {partition, mod.name, inst.name});
                hierarchy_ok = false;
            }
        }
    }
    if (hierarchy_ok) {
        // Instantiation cycles (module instantiating an ancestor):
        // cyclic SCCs of the module instantiation graph, via the
        // shared base/graph.hh Tarjan.
        base::StringDigraph inst_graph;
        for (const auto &[name, mod] : circuit.modules) {
            inst_graph.ensureNode(name);
            for (const auto &inst : mod.instances)
                inst_graph.addEdge(name, inst.moduleName);
        }
        for (const auto &comp : inst_graph.cyclicComponents()) {
            report.add("IR007", Severity::Error,
                       "instantiation cycle through module '" +
                           comp.front() + "'",
                       {partition, comp.back(), ""});
            hierarchy_ok = false;
        }
    }
    if (!hierarchy_ok)
        return false;

    for (const Module *mod : reachableModules(circuit))
        checkModuleStructure(circuit, *mod, report, partition);

    return report.count(Severity::Error) == errors_before;
}

void
checkCircuitDeps(const Circuit &circuit,
                 const passes::CombDepAnalysis &analysis, Report &report,
                 const std::string &partition, bool check_dead_logic)
{
    // IR004: combinational cycles recorded by the loop-tolerant
    // analysis, one diagnostic per SCC with the full chain.
    for (const auto &loop : analysis.loops()) {
        std::ostringstream msg;
        msg << "combinational cycle: ";
        for (size_t i = 0; i < loop.signals.size(); ++i)
            msg << loop.signals[i] << " -> ";
        msg << loop.signals.front();
        report.add("IR004", Severity::Error, msg.str(),
                   {partition, loop.module,
                    loop.signals.empty() ? "" : loop.signals.front()});
    }

    if (!check_dead_logic)
        return;

    // IR005: dead logic. Per module, walk the driver graph backwards
    // from the output ports; wires and registers never reached cannot
    // influence anything observable.
    for (const Module *mod : reachableModules(circuit)) {
        std::map<std::string, std::set<std::string>> rev;
        for (const auto &c : mod->connects) {
            std::vector<std::string> refs;
            collectRefs(c.rhs, refs);
            rev[c.lhs].insert(refs.begin(), refs.end());
        }
        for (const auto &m : mod->mems) {
            // Observing rdata depends on the whole memory state.
            auto &srcs = rev[m.name + ".rdata"];
            srcs.insert(m.name + ".raddr");
            srcs.insert(m.name + ".waddr");
            srcs.insert(m.name + ".wdata");
            srcs.insert(m.name + ".wen");
        }
        for (const auto &inst : mod->instances) {
            const Module *child = circuit.findModule(inst.moduleName);
            if (!child)
                continue;
            // Conservative: any observed child output keeps every
            // child input alive.
            for (const auto &po : child->ports) {
                if (po.dir != PortDir::Output)
                    continue;
                auto &srcs = rev[inst.name + "." + po.name];
                for (const auto &pi : child->ports)
                    if (pi.dir == PortDir::Input)
                        srcs.insert(inst.name + "." + pi.name);
            }
        }

        std::set<std::string> alive;
        std::deque<std::string> work;
        for (const auto &p : mod->ports) {
            if (p.dir == PortDir::Output) {
                alive.insert(p.name);
                work.push_back(p.name);
            }
        }
        while (!work.empty()) {
            std::string cur = work.front();
            work.pop_front();
            auto it = rev.find(cur);
            if (it == rev.end())
                continue;
            for (const auto &src : it->second)
                if (alive.insert(src).second)
                    work.push_back(src);
        }

        for (const auto &w : mod->wires) {
            if (!alive.count(w.name)) {
                report.add("IR005", Severity::Warning,
                           "wire cannot reach any output port "
                           "(dead logic)",
                           {partition, mod->name, w.name});
            }
        }
        for (const auto &r : mod->regs) {
            if (!alive.count(r.name)) {
                report.add("IR005", Severity::Warning,
                           "register cannot reach any output port "
                           "(dead logic)",
                           {partition, mod->name, r.name});
            }
        }
    }
}

} // namespace fireaxe::verify
