/**
 * @file
 * Structured diagnostics engine shared by all static checks.
 *
 * Every finding is a Diagnostic: a stable code (e.g. "LBDN001"), a
 * severity, a human-readable message, and a source location naming the
 * partition / module / signal the finding is anchored to. A Report
 * collects diagnostics and renders them as text (one finding per
 * line, compiler style) or JSON (for tooling). The code space is
 * enumerated by checkRegistry() so tools can list every check the
 * verifier implements.
 *
 * Code families:
 *  - IRxxx   — firrtl:: circuit well-formedness (src/verify/ir.cc)
 *  - LBDNxxx — LI-BDN channel dependency protocol (src/verify/libdn.cc)
 *  - PLANxxx — partition-plan structure & capacity (src/verify/plan.cc)
 */

#ifndef FIREAXE_VERIFY_DIAG_HH
#define FIREAXE_VERIFY_DIAG_HH

#include <cstddef>
#include <string>
#include <vector>

namespace fireaxe::verify {

/** Finding severity; Error makes a Report rejecting. */
enum class Severity { Note, Warning, Error };

/** Stable lowercase name for a severity ("note"/"warning"/"error"). */
const char *severityName(Severity sev);

/** Where a finding is anchored. All fields optional. */
struct SourceLoc
{
    std::string partition; ///< e.g. "p1" or a partition name
    std::string module;    ///< module name within the circuit
    std::string signal;    ///< net / port / channel name
};

/** One finding produced by a static check. */
struct Diagnostic
{
    std::string code;  ///< stable check code, e.g. "IR004"
    Severity severity = Severity::Error;
    std::string message;
    SourceLoc loc;

    /** "error[IR004] module 'Top' signal 'x': <message>" */
    std::string render() const;
};

/** Registry entry describing one check code. */
struct CheckInfo
{
    std::string code;
    Severity defaultSeverity;
    std::string summary;
};

/** Every diagnostic code the verifier can emit, in code order. */
const std::vector<CheckInfo> &checkRegistry();

/** Registry entry for a code; nullptr if unknown. */
const CheckInfo *findCheck(const std::string &code);

/** An ordered collection of diagnostics plus renderers. */
class Report
{
  public:
    void add(Diagnostic diag);
    void add(const std::string &code, Severity sev, std::string message,
             SourceLoc loc = {});

    /** Append all of another report's diagnostics. */
    void merge(const Report &other);

    const std::vector<Diagnostic> &diagnostics() const { return diags_; }

    bool empty() const { return diags_.empty(); }
    bool hasErrors() const { return count(Severity::Error) > 0; }
    size_t count(Severity sev) const;

    /** Diagnostics with the given code, in insertion order. */
    std::vector<Diagnostic> byCode(const std::string &code) const;

    /** Compiler-style text: one line per finding plus a summary. */
    std::string renderText() const;

    /** JSON object: {"diagnostics": [...], "errors": N, ...}. */
    std::string renderJson() const;

  private:
    std::vector<Diagnostic> diags_;
};

} // namespace fireaxe::verify

#endif // FIREAXE_VERIFY_DIAG_HH
