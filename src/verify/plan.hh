/**
 * @file
 * Partition-plan linter: structural validation of FireRipper output
 * (or hand-written plans) before any simulator state is built.
 *
 * checkPlanStructure validates the shapes the rest of the verifier
 * and the executor rely on (PLAN001-PLAN004, PLAN007). checkPlanCuts
 * adds the dependency-aware cut checks: fast-mode combinational
 * paths through un-buffered boundaries (PLAN005) and feedback /
 * link-capacity consistency (PLAN006).
 */

#ifndef FIREAXE_VERIFY_PLAN_HH
#define FIREAXE_VERIFY_PLAN_HH

#include <vector>

#include "passes/combdep.hh"
#include "ripper/partition.hh"
#include "verify/diag.hh"

namespace fireaxe::verify {

/**
 * Shape and capacity checks needing no dependency analysis. Returns
 * true when the plan is sound enough for the dependency-aware checks
 * (no errors added by this call).
 */
bool checkPlanStructure(const ripper::PartitionPlan &plan,
                        Report &report);

/**
 * Dependency-aware cut checks. @p summaries holds one PortDeps per
 * partition (the partition top's summary). Requires
 * checkPlanStructure to have passed.
 */
void checkPlanCuts(const ripper::PartitionPlan &plan,
                   const std::vector<passes::PortDeps> &summaries,
                   Report &report);

} // namespace fireaxe::verify

#endif // FIREAXE_VERIFY_PLAN_HH
