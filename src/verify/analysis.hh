/**
 * @file
 * Bridge from src/analyze's dataflow results to stable diagnostics:
 * constant-driven boundary ports (IR009), X escapes from unreset
 * registers (IR010), constant-propagation refinements of the dead
 * logic warning (IR005), plus the static cut-cost findings over a
 * partition plan (PLAN009 deep combinational cut, PLAN010 predicted
 * hot channel).
 *
 * These checks are gated like the others in verify.cc: the circuit
 * must have passed the structural IR gate (analyzeCircuit flattens
 * and resolves references), and the plan checks additionally require
 * a structurally valid plan and cycle-free partitions (the cost
 * model indexes partitions by the plan's own numbers and trusts the
 * port summaries).
 */

#ifndef FIREAXE_VERIFY_ANALYSIS_HH
#define FIREAXE_VERIFY_ANALYSIS_HH

#include <string>
#include <vector>

#include "analyze/batching.hh"
#include "analyze/cutcost.hh"
#include "passes/combdep.hh"
#include "ripper/partition.hh"
#include "verify/diag.hh"

namespace fireaxe::verify {

/**
 * Run the analyze pipeline over @p circuit and emit IR009/IR010 plus
 * IR005 refinements into @p report. @p partition labels the source
 * location (empty for a stand-alone circuit). @p check_dead_logic
 * mirrors Options::checkDeadLogic (IR005 is the noisy family).
 */
void checkCircuitAnalysis(const firrtl::Circuit &circuit,
                          Report &report,
                          const std::string &partition = "",
                          bool check_dead_logic = true);

/**
 * Run the static cut-cost analyzer over @p plan (reusing the
 * verifier's per-partition port summaries) and emit PLAN009/PLAN010.
 * Returns the full prediction so callers (pre-flight, lint) can also
 * render or serialize it without recomputing.
 */
analyze::CutCostReport
checkPlanCutCost(const ripper::PartitionPlan &plan,
                 const std::vector<passes::PortDeps> &summaries,
                 const analyze::CutCostOptions &options,
                 Report &report);

/**
 * Run the depth-N batching legality analysis over @p plan and emit
 * PLAN011 for every channel the pass clamps while a batch depth
 * greater than 1 was requested (@p requested_batch_depth; 1 emits
 * nothing — unbatched runs never cross an illegal boundary). Returns
 * the full legality report so the pre-flight can apply per-channel
 * clamps without recomputing.
 */
analyze::BatchLegalityReport
checkPlanBatching(const ripper::PartitionPlan &plan,
                  unsigned requested_batch_depth, Report &report);

} // namespace fireaxe::verify

#endif // FIREAXE_VERIFY_ANALYSIS_HH
