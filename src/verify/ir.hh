/**
 * @file
 * IR verifier: diagnostic (non-fatal) well-formedness checks over a
 * firrtl:: circuit. Mirrors the invariants firrtl::verifyCircuit()
 * enforces with fatal()s, but reports every violation as a structured
 * Diagnostic so a whole design can be linted in one pass, and adds
 * checks the builder cannot afford to make fatal: truncating
 * connects, combinational cycles (SCC over the netlist including
 * instance summaries), and dead-logic reachability.
 */

#ifndef FIREAXE_VERIFY_IR_HH
#define FIREAXE_VERIFY_IR_HH

#include "firrtl/ir.hh"
#include "passes/combdep.hh"
#include "verify/diag.hh"

namespace fireaxe::verify {

/**
 * Structural checks that need no dependency analysis: hierarchy
 * well-formedness (IR007), duplicate names (IR008), unknown /
 * non-drivable / non-readable references (IR006), multiple drivers
 * (IR001), truncating connects (IR002), undriven signals (IR003).
 *
 * Returns true when the circuit is structurally sound enough for
 * dependency analysis (no errors added by this call).
 *
 * @p partition optionally labels every diagnostic's location (used
 * when linting the partitions of a plan).
 */
bool checkCircuitStructure(const firrtl::Circuit &circuit, Report &report,
                           const std::string &partition = "");

/**
 * Dependency-level checks over a structurally sound circuit:
 * combinational cycles (IR004) from a LoopPolicy::Record analysis,
 * and dead-logic reachability (IR005). The caller provides the
 * analysis so it can be shared with the LI-BDN checker.
 */
void checkCircuitDeps(const firrtl::Circuit &circuit,
                      const passes::CombDepAnalysis &analysis,
                      Report &report, const std::string &partition = "",
                      bool check_dead_logic = true);

} // namespace fireaxe::verify

#endif // FIREAXE_VERIFY_IR_HH
