#include "verify/libdn.hh"

#include <map>
#include <set>
#include <sstream>

#include "analyze/cutcost.hh"
#include "base/graph.hh"

namespace fireaxe::verify {

using ripper::ChannelPlan;
using ripper::PartitionMode;
using ripper::PartitionPlan;

std::vector<std::vector<std::string>>
trueChannelDeps(const PartitionPlan &plan,
                const std::vector<passes::PortDeps> &summaries)
{
    // One recomputation, shared with the static cut-cost analyzer:
    // both must agree on what a channel truly waits on.
    return analyze::channelDependencies(plan, summaries);
}

void
checkLibdnProtocol(const PartitionPlan &plan,
                   const std::vector<passes::PortDeps> &summaries,
                   Report &report)
{
    if (plan.mode == PartitionMode::Fast)
        return;

    auto truth = trueChannelDeps(plan, summaries);
    std::map<std::string, int> by_name;
    for (size_t c = 0; c < plan.channels.size(); ++c)
        by_name[plan.channels[c].name] = int(c);

    for (size_t c = 0; c < plan.channels.size(); ++c) {
        const ChannelPlan &ch = plan.channels[c];
        std::set<std::string> true_deps(truth[c].begin(),
                                        truth[c].end());
        std::set<std::string> declared(ch.depChannels.begin(),
                                       ch.depChannels.end());
        std::string part = "p";
        part += std::to_string(ch.srcPart);
        SourceLoc loc{part, "", ch.name};

        // A source-class declaration claims the channel's outputs
        // depend on no inputs at all.
        if (!ch.sinkClass && !true_deps.empty()) {
            std::ostringstream msg;
            msg << "channel is declared source-class but its source "
                   "ports combinationally depend on channel(s)";
            for (const auto &d : true_deps)
                msg << " '" << d << "'";
            msg << "; the runtime FSM will wait on them "
                   "(under-declared dependency)";
            report.add("LBDN001", Severity::Error, msg.str(), loc);
        }

        // An explicit depChannels list must cover the truth exactly.
        // An empty list on a sink-class channel means "unenumerated"
        // (hand-written plans predating depChannels) and is accepted.
        if (!declared.empty()) {
            for (const auto &t : true_deps) {
                if (!declared.count(t) && ch.sinkClass) {
                    report.add("LBDN001", Severity::Error,
                               "channel depends on channel '" + t +
                                   "' which its depChannels "
                                   "declaration omits "
                                   "(under-declared dependency)",
                               loc);
                }
            }
            for (const auto &d : declared) {
                if (!by_name.count(d)) {
                    report.add("LBDN002", Severity::Warning,
                               "depChannels names unknown channel '" +
                                   d + "'",
                               loc);
                } else if (!true_deps.count(d)) {
                    report.add("LBDN002", Severity::Warning,
                               "declared dependency on channel '" + d +
                                   "' has no combinational path in "
                                   "the netlist (over-declared: "
                                   "provable throughput loss)",
                               loc);
                }
            }
        } else if (ch.sinkClass && true_deps.empty()) {
            report.add("LBDN002", Severity::Warning,
                       "channel is declared sink-class but its source "
                       "ports have no combinational input "
                       "dependencies (over-declared: provable "
                       "throughput loss)",
                       loc);
        }
    }

    // LBDN003: cycles in the recomputed channel wait-for graph. A
    // channel waits for its true dependency channels; with no seed
    // tokens (exact mode) a cycle means no channel in it can ever
    // fire. Cyclic SCCs of the wait-for graph via the shared
    // base/graph.hh Tarjan; one diagnostic per cycle.
    {
        base::StringDigraph waits;
        for (size_t c = 0; c < plan.channels.size(); ++c) {
            waits.ensureNode(plan.channels[c].name);
            for (const auto &dep : truth[c])
                if (by_name.count(dep))
                    waits.addEdge(plan.channels[c].name, dep);
        }
        for (const auto &comp : waits.cyclicComponents()) {
            std::ostringstream msg;
            msg << "channel wait-for cycle:";
            for (const auto &name : comp)
                msg << " '" << name << "' ->";
            msg << " '" << comp.front()
                << "' (no channel in the cycle can ever fire: "
                   "statically provable deadlock)";
            int c = by_name.at(comp.front());
            std::string cyc_part = "p";
            cyc_part += std::to_string(plan.channels[c].srcPart);
            report.add("LBDN003", Severity::Error, msg.str(),
                       {cyc_part, "", comp.front()});
        }
    }
}

} // namespace fireaxe::verify
