#include "verify/libdn.hh"

#include <map>
#include <set>
#include <sstream>

namespace fireaxe::verify {

using ripper::ChannelPlan;
using ripper::PartitionMode;
using ripper::PartitionPlan;

namespace {

/** Map each (partition, input port) to the index of the channel that
 *  delivers it. Plan structure is assumed valid (each net covered by
 *  exactly one channel). */
std::map<std::pair<int, std::string>, int>
inputPortChannels(const PartitionPlan &plan)
{
    std::map<std::pair<int, std::string>, int> out;
    for (size_t c = 0; c < plan.channels.size(); ++c)
        for (int n : plan.channels[c].netIndices)
            out[{plan.channels[c].dstPart, plan.nets[n].dstPort}] =
                int(c);
    return out;
}

} // namespace

std::vector<std::vector<std::string>>
trueChannelDeps(const PartitionPlan &plan,
                const std::vector<passes::PortDeps> &summaries)
{
    auto in_port_channel = inputPortChannels(plan);
    std::vector<std::vector<std::string>> out(plan.channels.size());
    for (size_t c = 0; c < plan.channels.size(); ++c) {
        const ChannelPlan &ch = plan.channels[c];
        std::set<std::string> deps;
        for (int n : ch.netIndices) {
            const auto &port_deps = summaries[ch.srcPart].deps;
            auto it = port_deps.find(plan.nets[n].srcPort);
            if (it == port_deps.end())
                continue;
            for (const auto &in : it->second) {
                auto cit = in_port_channel.find({ch.srcPart, in});
                if (cit != in_port_channel.end())
                    deps.insert(plan.channels[cit->second].name);
            }
        }
        out[c].assign(deps.begin(), deps.end());
    }
    return out;
}

void
checkLibdnProtocol(const PartitionPlan &plan,
                   const std::vector<passes::PortDeps> &summaries,
                   Report &report)
{
    if (plan.mode == PartitionMode::Fast)
        return;

    auto truth = trueChannelDeps(plan, summaries);
    std::map<std::string, int> by_name;
    for (size_t c = 0; c < plan.channels.size(); ++c)
        by_name[plan.channels[c].name] = int(c);

    for (size_t c = 0; c < plan.channels.size(); ++c) {
        const ChannelPlan &ch = plan.channels[c];
        std::set<std::string> true_deps(truth[c].begin(),
                                        truth[c].end());
        std::set<std::string> declared(ch.depChannels.begin(),
                                       ch.depChannels.end());
        std::string part = "p";
        part += std::to_string(ch.srcPart);
        SourceLoc loc{part, "", ch.name};

        // A source-class declaration claims the channel's outputs
        // depend on no inputs at all.
        if (!ch.sinkClass && !true_deps.empty()) {
            std::ostringstream msg;
            msg << "channel is declared source-class but its source "
                   "ports combinationally depend on channel(s)";
            for (const auto &d : true_deps)
                msg << " '" << d << "'";
            msg << "; the runtime FSM will wait on them "
                   "(under-declared dependency)";
            report.add("LBDN001", Severity::Error, msg.str(), loc);
        }

        // An explicit depChannels list must cover the truth exactly.
        // An empty list on a sink-class channel means "unenumerated"
        // (hand-written plans predating depChannels) and is accepted.
        if (!declared.empty()) {
            for (const auto &t : true_deps) {
                if (!declared.count(t) && ch.sinkClass) {
                    report.add("LBDN001", Severity::Error,
                               "channel depends on channel '" + t +
                                   "' which its depChannels "
                                   "declaration omits "
                                   "(under-declared dependency)",
                               loc);
                }
            }
            for (const auto &d : declared) {
                if (!by_name.count(d)) {
                    report.add("LBDN002", Severity::Warning,
                               "depChannels names unknown channel '" +
                                   d + "'",
                               loc);
                } else if (!true_deps.count(d)) {
                    report.add("LBDN002", Severity::Warning,
                               "declared dependency on channel '" + d +
                                   "' has no combinational path in "
                                   "the netlist (over-declared: "
                                   "provable throughput loss)",
                               loc);
                }
            }
        } else if (ch.sinkClass && true_deps.empty()) {
            report.add("LBDN002", Severity::Warning,
                       "channel is declared sink-class but its source "
                       "ports have no combinational input "
                       "dependencies (over-declared: provable "
                       "throughput loss)",
                       loc);
        }
    }

    // LBDN003: cycles in the recomputed channel wait-for graph. A
    // channel waits for its true dependency channels; with no seed
    // tokens (exact mode) a cycle means no channel in it can ever
    // fire. Iterative DFS over channel indices.
    {
        std::map<std::string, int> state; // keyed by channel name
        for (size_t root = 0; root < plan.channels.size(); ++root) {
            const std::string &root_name = plan.channels[root].name;
            if (state[root_name])
                continue;
            // Stack of (channel index, next dep position, path pos).
            std::vector<std::pair<int, size_t>> stack;
            std::vector<int> path;
            stack.push_back({int(root), 0});
            state[root_name] = 1;
            path.push_back(int(root));
            while (!stack.empty()) {
                auto &[c, idx] = stack.back();
                const auto &deps = truth[c];
                if (idx < deps.size()) {
                    const std::string &dep = deps[idx++];
                    auto it = by_name.find(dep);
                    if (it == by_name.end())
                        continue;
                    int d = it->second;
                    int s = state[dep];
                    if (s == 1) {
                        // Found a cycle: slice it out of the path.
                        std::ostringstream msg;
                        msg << "channel wait-for cycle:";
                        size_t start = 0;
                        while (path[start] != d)
                            ++start;
                        for (size_t i = start; i < path.size(); ++i) {
                            msg << " '"
                                << plan.channels[path[i]].name
                                << "' ->";
                        }
                        msg << " '" << dep
                            << "' (no channel in the cycle can ever "
                               "fire: statically provable deadlock)";
                        std::string cyc_part = "p";
                        cyc_part += std::to_string(
                            plan.channels[d].srcPart);
                        report.add("LBDN003", Severity::Error,
                                   msg.str(), {cyc_part, "", dep});
                    } else if (s == 0) {
                        state[dep] = 1;
                        stack.push_back({d, 0});
                        path.push_back(d);
                    }
                    continue;
                }
                state[plan.channels[c].name] = 2;
                stack.pop_back();
                path.pop_back();
            }
        }
    }
}

} // namespace fireaxe::verify
