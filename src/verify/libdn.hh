/**
 * @file
 * LI-BDN protocol checker: recomputes per-partition combinational
 * dependency summaries (passes/combdep) and cross-checks them against
 * the channel dependencies the partition plan declares.
 *
 * The declaration (ChannelPlan::sinkClass + ChannelPlan::depChannels)
 * drives exact-mode channelization; the runtime LIBDNModel always
 * waits on the TRUE dependencies of the signals bound to a channel.
 * So an under-declared dependency means comb-dependent ports were
 * bundled into a channel whose wait-for relation the plan author did
 * not account for — and when those true dependencies form a cycle
 * across unseeded channels, the simulation provably deadlocks before
 * the first token moves (LBDN003). A dependency declared but not
 * present in the netlist delays firing for no reason: provable
 * throughput loss (LBDN002).
 *
 * Fast-mode plans are skipped: seed tokens break boundary wait-for
 * cycles by construction, and the ready-valid transform rewrites the
 * partitions after the summaries these declarations were derived from.
 */

#ifndef FIREAXE_VERIFY_LIBDN_HH
#define FIREAXE_VERIFY_LIBDN_HH

#include <vector>

#include "passes/combdep.hh"
#include "ripper/partition.hh"
#include "verify/diag.hh"

namespace fireaxe::verify {

/**
 * Cross-check declared against recomputed channel dependencies and
 * detect channel wait-for cycles. @p summaries holds one PortDeps per
 * partition (the partition top's summary), indexed like
 * plan.partitions. Requires the plan to have passed the structural
 * plan checks (checkPlanStructure).
 */
void checkLibdnProtocol(const ripper::PartitionPlan &plan,
                        const std::vector<passes::PortDeps> &summaries,
                        Report &report);

/**
 * The recomputed (true) dependency channels of each channel: names of
 * channels into ch.srcPart whose bound input ports some net of ch
 * combinationally depends on. Exposed for the executor's runtime
 * deadlock diagnosis cross-reference.
 */
std::vector<std::vector<std::string>>
trueChannelDeps(const ripper::PartitionPlan &plan,
                const std::vector<passes::PortDeps> &summaries);

} // namespace fireaxe::verify

#endif // FIREAXE_VERIFY_LIBDN_HH
