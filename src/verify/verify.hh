/**
 * @file
 * Static verifier entry points: run every check family over a
 * circuit or a partition plan and collect one Report.
 *
 * Check ordering is load-bearing: structural IR checks gate the
 * dependency analysis (CombDepAnalysis assumes resolvable
 * references), and plan-structure checks gate the LI-BDN and cut
 * checks (which index partitions and nets by the plan's own
 * numbers). When a gate fails the later checks are skipped rather
 * than crashed, so a broken input still produces a clean report.
 */

#ifndef FIREAXE_VERIFY_VERIFY_HH
#define FIREAXE_VERIFY_VERIFY_HH

#include "analyze/cutcost.hh"
#include "firrtl/ir.hh"
#include "ripper/partition.hh"
#include "verify/analysis.hh"
#include "verify/diag.hh"
#include "verify/ir.hh"
#include "verify/libdn.hh"
#include "verify/plan.hh"

namespace fireaxe::verify {

/** Which check families to run. */
struct Options
{
    bool checkIr = true;       ///< IRxxx over every circuit
    bool checkLibdn = true;    ///< LBDNxxx over the channel plan
    bool checkPlan = true;     ///< PLANxxx over the plan structure
    bool checkDeadLogic = true; ///< IR005 (the only noisy warning)
    /** Dataflow analyses: IR009/IR010 per circuit, PLAN009/PLAN010
     *  over the plan's predicted cut cost. */
    bool checkAnalyze = true;
    /** Cost-model knobs for the PLAN009/PLAN010 checks; pre-flight
     *  overrides link/hostClockMhz with the actual sim config. */
    analyze::CutCostOptions cutCost;
    /** Batch depth the run will request (ExecConfig::batchDepth);
     *  PLAN011 fires for every channel the batching legality pass
     *  clamps while this is > 1. 1 (the default) keeps stand-alone
     *  verification quiet. */
    unsigned requestedBatchDepth = 1;
};

/** Verify a stand-alone circuit (IR checks only). */
Report verifyCircuit(const firrtl::Circuit &circuit,
                     const Options &options = {});

/** Verify a partition plan: plan structure, every partition's IR,
 *  then the dependency-aware LI-BDN and cut checks. */
Report verifyPlan(const ripper::PartitionPlan &plan,
                  const Options &options = {});

} // namespace fireaxe::verify

#endif // FIREAXE_VERIFY_VERIFY_HH
