/**
 * @file
 * SimService: the multi-tenant job engine behind the `fireaxed`
 * daemon. A fixed pool of worker threads pulls whole jobs off one
 * queue — scheduling across-job parallelism over the cores, on top
 * of whatever per-job parallelism each job's own ExecConfig requests
 * (src/par) — and runs each through svc::JobRunner against the one
 * shared ArtifactCache, so every tenant warms the cache for every
 * other.
 *
 * All job output is pushed through the submitter's EventSink as
 * rendered fireaxe.job.v1 protocol lines: lifecycle status edges,
 * incremental telemetry stream wrappers, and exactly one terminal
 * result or error line per job. Sinks are called from worker threads
 * (and, for stream lines, from inside the running simulation); a
 * sink shared between jobs must be internally synchronized — the
 * socket server wraps each connection's sink in a mutex.
 *
 * Graceful drain: drain() stops intake, rejects everything still
 * queued with a structured "draining" error, and requestStop()s every
 * in-flight simulation — each quiesces at its next run()-boundary,
 * commits a resumable snapshot when its job has a snapshot directory,
 * and reports a stopped result. This is the daemon's SIGTERM path.
 */

#ifndef FIREAXE_SVC_SERVICE_HH
#define FIREAXE_SVC_SERVICE_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "svc/cache.hh"
#include "svc/jobspec.hh"

namespace fireaxe::platform {
class MultiFpgaSim;
}

namespace fireaxe::svc {

struct ServiceConfig
{
    /** Worker threads = concurrent jobs (min 1). */
    unsigned workers = 2;
    CacheBudgets cache;
};

class SimService
{
  public:
    /** Receives rendered protocol lines (no trailing newline). */
    using EventSink = std::function<void(const std::string &line)>;

    explicit SimService(const ServiceConfig &cfg = {});
    ~SimService();

    /**
     * Queue a job; returns its id immediately. The sink sees, in
     * order: status(queued) [from this call], status(running), any
     * stream lines, then one result or error line. After drain()
     * begins, submissions are rejected with an immediate error line
     * (the id is still consumed and returned).
     */
    uint64_t submit(const JobSpec &spec, EventSink sink);

    /** Block until the queue is empty and no job is running. */
    void waitAll();

    /** Block until job @p id has emitted its terminal line. False if
     *  the id was never issued. */
    bool waitJob(uint64_t id);

    /**
     * Graceful shutdown: stop intake, reject queued jobs, ask every
     * in-flight simulation to quiesce, and join the workers. Safe to
     * call more than once; the destructor calls it.
     */
    void drain();

    bool draining() const;

    ArtifactCache &cache() { return cache_; }

    uint64_t jobsSubmitted() const;
    uint64_t jobsActive() const;
    uint64_t jobsCompleted() const;

  private:
    struct Job
    {
        uint64_t id = 0;
        JobSpec spec;
        EventSink sink;
    };

    void workerLoop();
    void runOne(Job job);
    void finishJob(uint64_t id);

    ServiceConfig cfg_;
    ArtifactCache cache_;

    mutable std::mutex mtx_;
    std::condition_variable workCv_; ///< queue / drain edges
    std::condition_variable doneCv_; ///< job completions
    std::deque<Job> queue_;
    /** In-flight sims, for drain's requestStop broadcast. Entries
     *  are owned by the running JobRunner; they are erased before
     *  the runner dies. */
    std::unordered_map<uint64_t, platform::MultiFpgaSim *> active_;
    std::unordered_set<uint64_t> done_;
    uint64_t nextId_ = 1;
    uint64_t completed_ = 0;
    bool draining_ = false;
    std::vector<std::thread> workers_;
};

} // namespace fireaxe::svc

#endif // FIREAXE_SVC_SERVICE_HH
