/**
 * @file
 * JobSpec: the one description of a simulation job shared by every
 * front end. `fireaxe-run` builds one from its flags, the `fireaxed`
 * daemon parses one out of a `fireaxe.job.v1` submit request, and
 * tests construct them directly — all three hand the same struct to
 * svc::JobRunner, so a job behaves identically no matter how it
 * arrived.
 *
 * The wire form is one flat JSON object. Parsing is strict: unknown
 * keys, wrong value kinds, and out-of-range enumerations are rejected
 * with a diagnostic naming the offending key, so a malformed
 * submission gets a structured error instead of a silently-defaulted
 * field.
 */

#ifndef FIREAXE_SVC_JOBSPEC_HH
#define FIREAXE_SVC_JOBSPEC_HH

#include <cstdint>
#include <string>

#include "obs/json.hh"
#include "obs/jsonparse.hh"

namespace fireaxe::svc {

/** One simulation job: target + plan shape + execution config +
 *  stimulus/fault/telemetry options. */
struct JobSpec
{
    /** Registry name (svc/targets.hh); required. */
    std::string target;
    /** Partitioning mode: "exact" or "fast". */
    std::string mode = "exact";
    /** Execution backend: "sequential" or "parallel". */
    std::string backend = "sequential";
    /** Parallel worker threads (0 = auto). */
    unsigned workers = 0;
    /** Evaluation engine: "" = process default (FIREAXE_EVAL),
     *  "interpret" or "compiled". */
    std::string engine;
    /** Depth-N token batching (ExecConfig::batchDepth); 0 = process
     *  default (FIREAXE_BATCH_DEPTH), 1 = classic per-cycle tokens.
     *  Illegal boundaries are clamped per channel (PLAN011), so any
     *  depth is bit-exact. */
    unsigned batchDepth = 0;
    /** Target cycles to simulate. */
    uint64_t cycles = 2000;

    /** Fault injection rate per token (0 = off) and its seed. */
    double faultRate = 0.0;
    uint64_t seed = 0xF1A57ULL;

    /** Autosnapshot interval (target cycles; 0 = off) + directory. */
    uint64_t snapshotEvery = 0;
    std::string snapshotDir;
    /** Restore the committed snapshot in snapshotDir first. */
    bool resume = false;
    /** Fold only cycles >= hashFrom into the trace hash (a resume
     *  raises this to the resume cycle). */
    uint64_t hashFrom = 0;

    /** Stream fireaxe.stream.v1 telemetry back to the submitter. */
    bool stream = false;
    /** Stream telemetry to this file instead (CLI --stream FILE;
     *  daemon-side path when submitted over the wire). */
    std::string streamPath;
    /** Token-trace sampling rate (1-in-N). */
    unsigned sampleEvery = 64;
    /** Stream-chunk cadence in target cycles (0 = executor default). */
    uint64_t streamEvery = 0;

    /**
     * Channel-capacity override: -1 keeps the planned capacities;
     * >= 0 forces every planned channel to that capacity before
     * verification. 0 is statically invalid (PLAN007) — the knob CI
     * uses to exercise the service's structured-rejection path.
     */
    int channelCapacity = -1;

    /** "" when well-formed, else a diagnostic ("--flag style"). */
    std::string validate() const;

    /**
     * FNV-1a identity of everything that shapes elaboration (target,
     * mode, channel-capacity override): the artifact-cache key for
     * the elaborated plan. Execution knobs (cycles, backend, faults)
     * deliberately do not participate — they don't change the plan.
     */
    uint64_t elabSignature() const;

    /** Emit the wire form into an already-open writer scope-free
     *  position (writes one complete JSON object). */
    void writeJson(obs::JsonWriter &w) const;
};

/**
 * Parse the wire form. Strict: every key must be known and correctly
 * typed. Returns false with a diagnostic naming the key on rejection.
 * (Spec-level validation — unknown target, bad mode — is separate;
 * call spec.validate() after a successful parse.)
 */
bool parseJobSpec(const obs::JsonValue &v, JobSpec &spec,
                  std::string &error);

} // namespace fireaxe::svc

#endif // FIREAXE_SVC_JOBSPEC_HH
