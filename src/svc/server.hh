/**
 * @file
 * The fireaxed transport: a Unix-domain stream socket speaking
 * newline-delimited fireaxe.job.v1 (src/svc/protocol.hh), plus the
 * small blocking client the CLI's --connect mode and the smoke tests
 * use.
 *
 * Server shape: one accept loop (poll over the listen socket and a
 * self-pipe, so a signal handler can wake it), one reader thread per
 * connection, and one mutex per connection serializing every write
 * back to it — job results, status edges, and telemetry stream lines
 * land on the socket whole-line-atomically even when several jobs
 * for the same client run concurrently in the service's worker pool.
 *
 * Shutdown: requestShutdown() is async-signal-safe (an atomic flag
 * and one write() to the self-pipe). run() then stops accepting,
 * drains the service — in-flight jobs quiesce and report stopped
 * results through their connections — and joins everything before
 * returning.
 */

#ifndef FIREAXE_SVC_SERVER_HH
#define FIREAXE_SVC_SERVER_HH

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "svc/jobspec.hh"
#include "svc/service.hh"

namespace fireaxe::svc {

struct ServerConfig
{
    /** Filesystem path of the listening socket (unlinked and
     *  re-bound on start). */
    std::string socketPath;
    ServiceConfig service;
};

class Server
{
  public:
    explicit Server(const ServerConfig &cfg);
    ~Server();

    /** Bind + listen. False with a diagnostic on failure. */
    bool start(std::string &error);

    /** Serve until requestShutdown(); drains the service and joins
     *  every connection before returning. */
    void run();

    /** Async-signal-safe shutdown trigger (SIGTERM/SIGINT path). */
    void requestShutdown();

    SimService &service() { return service_; }

    const std::string &socketPath() const { return cfg_.socketPath; }

  private:
    void handleConnection(int fd);

    ServerConfig cfg_;
    SimService service_;
    int listenFd_ = -1;
    int wakePipe_[2] = {-1, -1};
    std::atomic<bool> shutdown_{false};
    std::mutex threadsMtx_;
    std::vector<std::thread> threads_;
};

/**
 * Blocking line-oriented client. Connect, send request lines, read
 * response lines; readLine() returns false on EOF or error.
 */
class Client
{
  public:
    Client() = default;
    ~Client() { close(); }
    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    bool connect(const std::string &socket_path, std::string &error);
    bool sendLine(const std::string &line, std::string &error);
    bool readLine(std::string &line, std::string &error);
    void close();
    bool connected() const { return fd_ >= 0; }

    /** Render + send a submit request for @p spec. */
    bool submit(const JobSpec &spec, std::string &error);

  private:
    int fd_ = -1;
    std::string buf_;
};

} // namespace fireaxe::svc

#endif // FIREAXE_SVC_SERVER_HH
