#include "svc/server.hh"

#include <cerrno>
#include <cstring>
#include <sstream>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/json.hh"
#include "svc/protocol.hh"

namespace fireaxe::svc {

namespace {

/** Write the whole buffer, riding out EINTR and short writes.
 *  MSG_NOSIGNAL: a peer that hung up mid-job turns into a failed
 *  write, not a process-killing SIGPIPE. */
bool
writeAll(int fd, const char *data, size_t len)
{
    while (len > 0) {
        ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        len -= size_t(n);
    }
    return true;
}

} // namespace

Server::Server(const ServerConfig &cfg)
    : cfg_(cfg), service_(cfg.service)
{}

Server::~Server()
{
    requestShutdown();
    if (listenFd_ >= 0)
        ::close(listenFd_);
    for (int fd : wakePipe_)
        if (fd >= 0)
            ::close(fd);
    {
        std::lock_guard<std::mutex> lock(threadsMtx_);
        for (auto &t : threads_)
            if (t.joinable())
                t.join();
    }
    if (!cfg_.socketPath.empty())
        ::unlink(cfg_.socketPath.c_str());
}

bool
Server::start(std::string &error)
{
    if (cfg_.socketPath.empty()) {
        error = "no socket path configured";
        return false;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (cfg_.socketPath.size() >= sizeof(addr.sun_path)) {
        error = "socket path too long: " + cfg_.socketPath;
        return false;
    }
    std::strncpy(addr.sun_path, cfg_.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    ::unlink(cfg_.socketPath.c_str());
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0) {
        error = "bind " + cfg_.socketPath + ": " +
                std::strerror(errno);
        return false;
    }
    if (::listen(listenFd_, 16) < 0) {
        error = std::string("listen: ") + std::strerror(errno);
        return false;
    }
    if (::pipe(wakePipe_) < 0) {
        error = std::string("pipe: ") + std::strerror(errno);
        return false;
    }
    return true;
}

void
Server::run()
{
    while (!shutdown_.load(std::memory_order_acquire)) {
        pollfd fds[2];
        fds[0] = {listenFd_, POLLIN, 0};
        fds[1] = {wakePipe_[0], POLLIN, 0};
        int rc = ::poll(fds, 2, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (fds[1].revents & POLLIN)
            break; // woken by requestShutdown()
        if (!(fds[0].revents & POLLIN))
            continue;
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        std::lock_guard<std::mutex> lock(threadsMtx_);
        threads_.emplace_back(
            [this, fd] { handleConnection(fd); });
    }
    // Drain: in-flight jobs quiesce and report through their
    // connections, queued jobs get structured rejections.
    service_.drain();
    // Stop accepting before joining readers: a reader blocked on
    // read() returns once its client sees the results and closes.
    ::shutdown(listenFd_, SHUT_RDWR);
    std::vector<std::thread> readers;
    {
        std::lock_guard<std::mutex> lock(threadsMtx_);
        readers.swap(threads_);
    }
    for (auto &t : readers)
        if (t.joinable())
            t.join();
}

void
Server::requestShutdown()
{
    shutdown_.store(true, std::memory_order_release);
    if (wakePipe_[1] >= 0) {
        char byte = 1;
        // Best-effort wake; the loop also re-checks the flag.
        (void)!::write(wakePipe_[1], &byte, 1);
    }
}

void
Server::handleConnection(int fd)
{
    // One mutex per connection: worker threads (results, telemetry
    // stream lines) and this reader (acks, status replies) all write
    // whole lines under it.
    auto write_mtx = std::make_shared<std::mutex>();
    auto send = [fd, write_mtx](const std::string &line) {
        std::lock_guard<std::mutex> lock(*write_mtx);
        std::string framed = line;
        framed.push_back('\n');
        writeAll(fd, framed.data(), framed.size());
    };

    std::string buf;
    std::vector<uint64_t> jobs;
    char chunk[4096];
    for (;;) {
        ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        buf.append(chunk, size_t(n));
        size_t pos;
        while ((pos = buf.find('\n')) != std::string::npos) {
            std::string line = buf.substr(0, pos);
            buf.erase(0, pos + 1);
            if (line.empty())
                continue;
            Request req;
            std::string error;
            if (!parseRequest(line, req, error)) {
                send(errorLine(0, "bad_request", error));
                continue;
            }
            switch (req.kind) {
            case Request::Kind::Submit: {
                uint64_t id = service_.submit(req.job, send);
                send(ackLine(id));
                jobs.push_back(id);
                break;
            }
            case Request::Kind::Status:
                send(serviceStatusLine(
                    service_.jobsSubmitted(),
                    service_.jobsActive(),
                    service_.jobsCompleted(),
                    service_.cache().elabStats(),
                    service_.cache().reportStats(),
                    service_.cache().programStats()));
                break;
            case Request::Kind::Shutdown:
                send(statusLine(0, "shutting_down"));
                requestShutdown();
                break;
            }
        }
    }
    // The client hung up; any jobs it still owns keep running, but
    // their sinks must not touch the closed descriptor. Wait for
    // them — results are simply dropped on the floor once the
    // submitter is gone, matching fire-and-forget semantics.
    for (uint64_t id : jobs)
        service_.waitJob(id);
    ::close(fd);
}

// --- Client -------------------------------------------------------

bool
Client::connect(const std::string &socket_path, std::string &error)
{
    close();
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
        error = "socket path too long: " + socket_path;
        return false;
    }
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        error = "connect " + socket_path + ": " +
                std::strerror(errno);
        close();
        return false;
    }
    return true;
}

bool
Client::sendLine(const std::string &line, std::string &error)
{
    if (fd_ < 0) {
        error = "not connected";
        return false;
    }
    std::string framed = line;
    framed.push_back('\n');
    if (!writeAll(fd_, framed.data(), framed.size())) {
        error = std::string("write: ") + std::strerror(errno);
        return false;
    }
    return true;
}

bool
Client::readLine(std::string &line, std::string &error)
{
    if (fd_ < 0) {
        error = "not connected";
        return false;
    }
    for (;;) {
        size_t pos = buf_.find('\n');
        if (pos != std::string::npos) {
            line = buf_.substr(0, pos);
            buf_.erase(0, pos + 1);
            return true;
        }
        char chunk[4096];
        ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0) {
            error = std::string("read: ") + std::strerror(errno);
            return false;
        }
        if (n == 0) {
            error = "connection closed";
            return false;
        }
        buf_.append(chunk, size_t(n));
    }
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buf_.clear();
}

bool
Client::submit(const JobSpec &spec, std::string &error)
{
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.beginObject();
    w.key("type");
    w.value("submit");
    w.key("schema");
    w.value(kJobSchema);
    w.key("job");
    {
        std::ostringstream job_os;
        obs::JsonWriter job_w(job_os);
        spec.writeJson(job_w);
        w.raw(job_os.str());
    }
    w.endObject();
    return sendLine(os.str(), error);
}

} // namespace fireaxe::svc
