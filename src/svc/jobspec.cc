#include "svc/jobspec.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "recovery/snapshot.hh"
#include "svc/targets.hh"

namespace fireaxe::svc {

std::string
JobSpec::validate() const
{
    if (target.empty())
        return "job needs a target";
    if (!findTarget(target))
        return "unknown target '" + target + "'";
    if (mode != "exact" && mode != "fast")
        return "mode must be exact or fast, got '" + mode + "'";
    if (backend != "sequential" && backend != "parallel")
        return "backend must be sequential or parallel, got '" +
               backend + "'";
    if (!engine.empty() && engine != "interpret" &&
        engine != "compiled")
        return "engine must be interpret or compiled, got '" +
               engine + "'";
    if (resume && snapshotDir.empty())
        return "resume needs a snapshot directory";
    if (faultRate < 0.0 || faultRate > 1.0)
        return "fault rate must be in [0, 1]";
    return "";
}

uint64_t
JobSpec::elabSignature() const
{
    uint64_t h = recovery::fnv1a("fireaxe-elab");
    h = recovery::fnv1aMix(h, recovery::fnv1a(target));
    h = recovery::fnv1aMix(h, recovery::fnv1a(mode));
    h = recovery::fnv1aMix(h, uint64_t(int64_t(channelCapacity)));
    return h;
}

void
JobSpec::writeJson(obs::JsonWriter &w) const
{
    w.beginObject();
    w.key("target");
    w.value(target);
    w.key("mode");
    w.value(mode);
    w.key("backend");
    w.value(backend);
    w.key("workers");
    w.value(uint64_t(workers));
    if (!engine.empty()) {
        w.key("engine");
        w.value(engine);
    }
    if (batchDepth > 0) {
        w.key("batch_depth");
        w.value(uint64_t(batchDepth));
    }
    w.key("cycles");
    w.value(cycles);
    if (faultRate > 0.0) {
        w.key("fault_rate");
        w.value(faultRate);
        // Hex string, not a number: JSON numbers are doubles on the
        // far side and silently drop seed bits above 2^53.
        char hex[19];
        std::snprintf(hex, sizeof hex, "0x%llx",
                      (unsigned long long)seed);
        w.key("seed");
        w.value(hex);
    }
    if (snapshotEvery > 0) {
        w.key("snapshot_every");
        w.value(snapshotEvery);
    }
    if (!snapshotDir.empty()) {
        w.key("snapshot_dir");
        w.value(snapshotDir);
    }
    if (resume) {
        w.key("resume");
        w.value(true);
    }
    if (hashFrom > 0) {
        w.key("hash_from");
        w.value(hashFrom);
    }
    if (stream) {
        w.key("stream");
        w.value(true);
    }
    if (!streamPath.empty()) {
        w.key("stream_path");
        w.value(streamPath);
    }
    if (stream || !streamPath.empty()) {
        w.key("sample_every");
        w.value(uint64_t(sampleEvery));
        w.key("stream_every");
        w.value(streamEvery);
    }
    if (channelCapacity >= 0) {
        w.key("channel_capacity");
        w.value(channelCapacity);
    }
    w.endObject();
}

namespace {

bool
fail(std::string &error, const std::string &msg)
{
    error = msg;
    return false;
}

/** Non-negative integral number, or a diagnostic. */
bool
takeU64(const obs::JsonValue &v, const std::string &key,
        uint64_t &out, std::string &error)
{
    const obs::JsonValue *m = v.get(key);
    if (!m->isNumber())
        return fail(error, "key '" + key + "' must be a number");
    if (m->number < 0 || m->number != std::floor(m->number))
        return fail(error, "key '" + key +
                               "' must be a non-negative integer");
    out = uint64_t(m->number);
    return true;
}

bool
takeString(const obs::JsonValue &v, const std::string &key,
           std::string &out, std::string &error)
{
    const obs::JsonValue *m = v.get(key);
    if (!m->isString())
        return fail(error, "key '" + key + "' must be a string");
    out = m->str;
    return true;
}

bool
takeBool(const obs::JsonValue &v, const std::string &key, bool &out,
         std::string &error)
{
    const obs::JsonValue *m = v.get(key);
    if (!m->isBool())
        return fail(error, "key '" + key + "' must be a boolean");
    out = m->boolean;
    return true;
}

} // namespace

bool
parseJobSpec(const obs::JsonValue &v, JobSpec &spec,
             std::string &error)
{
    if (!v.isObject())
        return fail(error, "job must be a JSON object");
    spec = JobSpec{};
    for (const auto &[key, val] : v.obj) {
        uint64_t u = 0;
        if (key == "target") {
            if (!takeString(v, key, spec.target, error))
                return false;
        } else if (key == "mode") {
            if (!takeString(v, key, spec.mode, error))
                return false;
        } else if (key == "backend") {
            if (!takeString(v, key, spec.backend, error))
                return false;
        } else if (key == "engine") {
            if (!takeString(v, key, spec.engine, error))
                return false;
        } else if (key == "workers") {
            if (!takeU64(v, key, u, error))
                return false;
            spec.workers = unsigned(u);
        } else if (key == "batch_depth") {
            if (!takeU64(v, key, u, error))
                return false;
            spec.batchDepth = unsigned(u);
        } else if (key == "cycles") {
            if (!takeU64(v, key, spec.cycles, error))
                return false;
        } else if (key == "fault_rate") {
            if (!val.isNumber())
                return fail(error,
                            "key 'fault_rate' must be a number");
            spec.faultRate = val.number;
        } else if (key == "seed") {
            // Accept the hex-string wire form (full 64-bit fidelity)
            // or a plain number from hand-written clients.
            if (val.isString()) {
                char *end = nullptr;
                spec.seed = std::strtoull(val.str.c_str(), &end, 16);
                if (!end || *end != '\0')
                    return fail(error,
                                "key 'seed' must be a hex string "
                                "or number");
            } else if (!takeU64(v, key, spec.seed, error)) {
                return false;
            }
        } else if (key == "snapshot_every") {
            if (!takeU64(v, key, spec.snapshotEvery, error))
                return false;
        } else if (key == "snapshot_dir") {
            if (!takeString(v, key, spec.snapshotDir, error))
                return false;
        } else if (key == "resume") {
            if (!takeBool(v, key, spec.resume, error))
                return false;
        } else if (key == "hash_from") {
            if (!takeU64(v, key, spec.hashFrom, error))
                return false;
        } else if (key == "stream") {
            if (!takeBool(v, key, spec.stream, error))
                return false;
        } else if (key == "stream_path") {
            if (!takeString(v, key, spec.streamPath, error))
                return false;
        } else if (key == "sample_every") {
            if (!takeU64(v, key, u, error))
                return false;
            spec.sampleEvery = unsigned(u);
        } else if (key == "stream_every") {
            if (!takeU64(v, key, spec.streamEvery, error))
                return false;
        } else if (key == "channel_capacity") {
            if (!val.isNumber() ||
                val.number != std::floor(val.number))
                return fail(error, "key 'channel_capacity' must be "
                                   "an integer");
            spec.channelCapacity = int(val.number);
        } else {
            return fail(error, "unknown key '" + key + "'");
        }
    }
    if (spec.target.empty())
        return fail(error, "job needs a 'target' key");
    return true;
}

} // namespace fireaxe::svc
