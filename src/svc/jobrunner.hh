/**
 * @file
 * JobRunner: the one job-spec → RunResult pipeline behind every front
 * end. `fireaxe-run` (direct mode), the `fireaxed` daemon's worker
 * pool, bench_svc, and the tests all execute jobs through this class,
 * so a job's observable results — trace hash, final-state signature,
 * exit semantics — are identical no matter who ran it.
 *
 * The pipeline is two phases with a seam between them:
 *
 *   prepare() — elaborate (FireRipper) and statically verify the
 *     plan, both through the ArtifactCache when one is attached: a
 *     warm cache skips elaboration and re-verification entirely. A
 *     plan with Error-severity findings is rejected here with the
 *     rendered report (the daemon turns that into a structured error
 *     message). On success the MultiFpgaSim exists but has not
 *     initialized.
 *
 *   execute() — wire telemetry/monitors, seed cached compiled
 *     bytecode programs (third cache shard), init, optionally restore
 *     a snapshot, run, and fold the per-partition trace hashes and
 *     final-state signature exactly the way the CLI always has.
 *
 * The seam exists for the daemon's graceful drain: between prepare()
 * and execute() the service registers sim() in its active table, so a
 * SIGTERM can requestStop() every in-flight job; the runner notices a
 * stopped result and (when the job has a snapshot directory) commits
 * a resumable snapshot on the way out.
 */

#ifndef FIREAXE_SVC_JOBRUNNER_HH
#define FIREAXE_SVC_JOBRUNNER_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "platform/executor.hh"
#include "svc/cache.hh"
#include "svc/jobspec.hh"

namespace fireaxe::svc {

/** Everything a front end needs to report about one job. */
struct RunOutcome
{
    bool ok = false;
    /** CLI exit semantics: 0 ok, 2 bad spec, 3 rejected/runtime
     *  failure, 4 deadlock. */
    int exitCode = 0;
    /** Non-empty on failure/rejection. */
    std::string error;
    /** Rendered static-verification report (rejections, or warnings
     *  worth forwarding). */
    std::string verifyReport;

    uint64_t planHash = 0;
    /** platform::contentHash of the elaborated design+plan. */
    uint64_t artifactHash = 0;

    uint64_t traceHash = 0;
    uint64_t finalSig = 0;
    uint64_t resumeCycle = 0;
    /** Effective trace-hash floor (spec.hashFrom raised by resume). */
    uint64_t hashFrom = 0;

    platform::RunResult result;

    // Setup-latency breakdown (wall nanoseconds) + cache outcomes:
    // the numbers bench_svc reports for cold vs warm submissions.
    double elaborateNs = 0.0;
    double verifyNs = 0.0;
    double initNs = 0.0;
    double runNs = 0.0;
    bool elabCacheHit = false;
    bool verifyCacheHit = false;
    bool programCacheHit = false;

    // Recovery counters mirrored from the sim.
    uint64_t snapshots = 0;
    uint64_t snapshotBytes = 0;
    double snapshotWallMs = 0.0;
    uint64_t restores = 0;
};

class JobRunner
{
  public:
    /** @p cache may be null (every lookup misses; nothing cached). */
    explicit JobRunner(JobSpec spec, ArtifactCache *cache = nullptr);
    ~JobRunner();

    const JobSpec &spec() const { return spec_; }

    /**
     * Elaborate + verify through the cache. False on a malformed
     * spec or a statically rejected plan; outcome() then carries the
     * error, exit code, and (for rejections) the rendered report.
     */
    bool prepare();

    /** The executor; valid after a successful prepare(). Exposed so
     *  a daemon can requestStop() in-flight jobs. */
    platform::MultiFpgaSim *sim() { return sim_.get(); }

    /**
     * Run the prepared job. @p stream_sink, when non-null, receives
     * the job's fireaxe.stream.v1 telemetry JSONL incrementally (the
     * daemon points it at the client connection); spec.streamPath
     * streams to a file instead. Returns outcome().
     */
    const RunOutcome &execute(std::ostream *stream_sink = nullptr);

    const RunOutcome &outcome() const { return outcome_; }

  private:
    bool elaborate();
    bool verifyPhase();

    JobSpec spec_;
    ArtifactCache *cache_;
    std::shared_ptr<const Elaboration> elab_;
    std::unique_ptr<platform::MultiFpgaSim> sim_;
    std::vector<uint64_t> traceHash_;
    RunOutcome outcome_;
    bool prepared_ = false;
};

/** prepare() + execute() in one call (CLI and tests). */
RunOutcome runJob(const JobSpec &spec, ArtifactCache *cache = nullptr,
                  std::ostream *stream_sink = nullptr);

} // namespace fireaxe::svc

#endif // FIREAXE_SVC_JOBRUNNER_HH
