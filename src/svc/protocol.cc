#include "svc/protocol.hh"

#include <cstdlib>
#include <sstream>

#include "obs/json.hh"
#include "obs/jsonparse.hh"

namespace fireaxe::svc {

bool
parseRequest(const std::string &line, Request &req,
             std::string &error)
{
    obs::JsonValue v;
    if (!parseJson(line, v, error))
        return false;
    if (!v.isObject()) {
        error = "request must be a JSON object";
        return false;
    }
    std::string type = v.text("type");
    if (type == "submit") {
        req.kind = Request::Kind::Submit;
        std::string schema = v.text("schema");
        if (schema != kJobSchema) {
            error = "submit needs \"schema\":\"" +
                    std::string(kJobSchema) + "\", got '" + schema +
                    "'";
            return false;
        }
        const obs::JsonValue *job = v.get("job");
        if (!job) {
            error = "submit needs a 'job' object";
            return false;
        }
        return parseJobSpec(*job, req.job, error);
    }
    if (type == "status") {
        req.kind = Request::Kind::Status;
        return true;
    }
    if (type == "shutdown") {
        req.kind = Request::Kind::Shutdown;
        return true;
    }
    error = type.empty() ? "request needs a 'type' key"
                         : "unknown request type '" + type + "'";
    return false;
}

std::string
hexHash(uint64_t h)
{
    std::ostringstream os;
    os << "0x" << std::hex << h;
    return os.str();
}

uint64_t
parseHexHash(const std::string &text)
{
    return std::strtoull(text.c_str(), nullptr, 16);
}

namespace {

/** Open a one-line response with its type and job id. */
struct Line
{
    std::ostringstream os;
    obs::JsonWriter w{os};

    Line(const char *type)
    {
        w.beginObject();
        w.key("type");
        w.value(type);
    }

    Line(const char *type, uint64_t job) : Line(type)
    {
        w.key("job");
        w.value(job);
    }

    std::string
    close()
    {
        w.endObject();
        return os.str();
    }
};

} // namespace

std::string
ackLine(uint64_t job)
{
    Line l("ack", job);
    return l.close();
}

std::string
statusLine(uint64_t job, const std::string &state)
{
    Line l("status", job);
    l.w.key("state");
    l.w.value(state);
    return l.close();
}

std::string
streamLine(uint64_t job, const std::string &data)
{
    Line l("stream", job);
    l.w.key("data");
    l.w.raw(data);
    return l.close();
}

std::string
errorLine(uint64_t job, const std::string &code,
          const std::string &message, const std::string &report)
{
    Line l("error", job);
    l.w.key("code");
    l.w.value(code);
    l.w.key("message");
    l.w.value(message);
    if (!report.empty()) {
        l.w.key("report");
        l.w.value(report);
    }
    return l.close();
}

std::string
resultLine(uint64_t job, const std::string &target,
           const RunOutcome &o)
{
    Line l("result", job);
    obs::JsonWriter &w = l.w;
    w.key("target");
    w.value(target);
    w.key("ok");
    w.value(o.ok);
    w.key("cycles");
    w.value(o.result.targetCycles);
    w.key("resume_cycle");
    w.value(o.resumeCycle);
    w.key("hash_from");
    w.value(o.hashFrom);
    w.key("trace_hash");
    w.value(hexHash(o.traceHash));
    w.key("final_sig");
    w.value(hexHash(o.finalSig));
    w.key("plan_hash");
    w.value(hexHash(o.planHash));
    w.key("artifact_hash");
    w.value(hexHash(o.artifactHash));
    w.key("deadlocked");
    w.value(o.result.deadlocked);
    w.key("stopped");
    w.value(o.result.stopped);
    w.key("host_time_ns");
    w.value(o.result.hostTimeNs);
    w.key("sim_rate_mhz");
    w.value(o.result.simRateMhz());
    w.key("retransmits");
    w.value(o.result.retransmits);
    w.key("snapshots");
    w.value(o.snapshots);
    w.key("restores");
    w.value(o.restores);
    w.key("elab_cache_hit");
    w.value(o.elabCacheHit);
    w.key("verify_cache_hit");
    w.value(o.verifyCacheHit);
    w.key("program_cache_hit");
    w.value(o.programCacheHit);
    w.key("elaborate_ns");
    w.value(o.elaborateNs);
    w.key("verify_ns");
    w.value(o.verifyNs);
    w.key("init_ns");
    w.value(o.initNs);
    w.key("run_ns");
    w.value(o.runNs);
    if (!o.error.empty()) {
        w.key("error");
        w.value(o.error);
    }
    return l.close();
}

namespace {

void
writeShard(obs::JsonWriter &w, const char *key,
           const CacheShardStats &s)
{
    w.key(key);
    w.beginObject();
    w.key("hits");
    w.value(s.hits);
    w.key("misses");
    w.value(s.misses);
    w.key("insertions");
    w.value(s.insertions);
    w.key("evictions");
    w.value(s.evictions);
    w.key("entries");
    w.value(uint64_t(s.entries));
    w.key("bytes");
    w.value(uint64_t(s.bytes));
    w.key("budget");
    w.value(uint64_t(s.budget));
    w.endObject();
}

} // namespace

std::string
serviceStatusLine(uint64_t submitted, uint64_t active,
                  uint64_t completed, const CacheShardStats &elab,
                  const CacheShardStats &verify,
                  const CacheShardStats &programs)
{
    Line l("service_status");
    obs::JsonWriter &w = l.w;
    w.key("jobs_submitted");
    w.value(submitted);
    w.key("jobs_active");
    w.value(active);
    w.key("jobs_completed");
    w.value(completed);
    w.key("cache");
    w.beginObject();
    writeShard(w, "elaborations", elab);
    writeShard(w, "verify_reports", verify);
    writeShard(w, "compiled_programs", programs);
    w.endObject();
    return l.close();
}

} // namespace fireaxe::svc
