/**
 * @file
 * The fireaxe.job.v1 wire protocol: newline-delimited JSON over a
 * local stream socket. One JSON object per line in both directions.
 *
 * Client → server requests:
 *   {"type":"submit","schema":"fireaxe.job.v1","job":{...}}
 *   {"type":"status"}
 *   {"type":"shutdown"}          — drain and exit (used by tests/CI)
 *
 * Server → client lines (job ids scope everything, so one connection
 * can interleave several jobs):
 *   {"type":"ack","job":N}                        — accepted, queued
 *   {"type":"status","job":N,"state":"..."}       — lifecycle edges
 *   {"type":"stream","job":N,"data":{...}}        — one telemetry
 *       fireaxe.stream.v1 line, forwarded verbatim as it is produced
 *   {"type":"result","job":N,...}                 — terminal success
 *   {"type":"error","job":N,"code":"...","message":"...",
 *    "report":"..."}                              — terminal failure
 *       (code "verify" carries the rendered static-verifier report)
 *   {"type":"service_status",...}                 — status reply
 *
 * 64-bit hashes travel as "0x..." hex strings: the JSON parser holds
 * numbers as doubles, which silently lose bits above 2^53 — a trace
 * hash that survives the round trip only most of the time is worse
 * than none.
 */

#ifndef FIREAXE_SVC_PROTOCOL_HH
#define FIREAXE_SVC_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "svc/cache.hh"
#include "svc/jobrunner.hh"
#include "svc/jobspec.hh"

namespace fireaxe::svc {

/** Protocol schema tag; a submit naming any other schema is
 *  rejected. */
constexpr const char *kJobSchema = "fireaxe.job.v1";

/** One parsed client request. */
struct Request
{
    enum class Kind { Submit, Status, Shutdown };
    Kind kind = Kind::Status;
    JobSpec job; ///< Submit only
};

/**
 * Parse one request line. False + diagnostic on malformed JSON, an
 * unknown type, a wrong schema, or a job object that fails
 * parseJobSpec's strict field checks.
 */
bool parseRequest(const std::string &line, Request &req,
                  std::string &error);

/** "0x" + lowercase hex (the wire form of every 64-bit hash). */
std::string hexHash(uint64_t h);

/** Parse hexHash's output (also accepts bare hex); 0 on garbage. */
uint64_t parseHexHash(const std::string &text);

// --- server → client line renderers (no trailing newline) ---------

std::string ackLine(uint64_t job);
std::string statusLine(uint64_t job, const std::string &state);
/** Wrap one raw telemetry JSONL line (already valid JSON). */
std::string streamLine(uint64_t job, const std::string &data);
std::string errorLine(uint64_t job, const std::string &code,
                      const std::string &message,
                      const std::string &report = "");
std::string resultLine(uint64_t job, const std::string &target,
                       const RunOutcome &outcome);
std::string serviceStatusLine(uint64_t submitted, uint64_t active,
                              uint64_t completed,
                              const CacheShardStats &elab,
                              const CacheShardStats &verify,
                              const CacheShardStats &programs);

} // namespace fireaxe::svc

#endif // FIREAXE_SVC_PROTOCOL_HH
