#include "svc/cache.hh"

#include <sstream>

#include "firrtl/printer.hh"

namespace fireaxe::svc {

// --- Shard --------------------------------------------------------

std::shared_ptr<const void>
ArtifactCache::Shard::find(uint64_t key)
{
    auto it = map.find(key);
    if (it == map.end()) {
        ++stats.misses;
        return nullptr;
    }
    ++stats.hits;
    lru.splice(lru.begin(), lru, it->second);
    return it->second->value;
}

void
ArtifactCache::Shard::put(uint64_t key,
                          std::shared_ptr<const void> value,
                          size_t entry_bytes)
{
    // An entry larger than the whole budget would evict everything
    // and still not fit; don't let one giant artifact flush the
    // shard.
    if (entry_bytes > budget)
        return;
    auto it = map.find(key);
    if (it != map.end()) {
        bytes -= it->second->bytes;
        lru.erase(it->second);
        map.erase(it);
    }
    while (bytes + entry_bytes > budget && !lru.empty()) {
        const Entry &victim = lru.back();
        bytes -= victim.bytes;
        map.erase(victim.key);
        lru.pop_back();
        ++stats.evictions;
    }
    lru.push_front(Entry{key, std::move(value), entry_bytes});
    map[key] = lru.begin();
    bytes += entry_bytes;
    ++stats.insertions;
}

void
ArtifactCache::Shard::clear()
{
    lru.clear();
    map.clear();
    bytes = 0;
}

CacheShardStats
ArtifactCache::Shard::snapshot() const
{
    CacheShardStats s = stats;
    s.entries = map.size();
    s.bytes = bytes;
    s.budget = budget;
    return s;
}

// --- ArtifactCache ------------------------------------------------

ArtifactCache::ArtifactCache(const CacheBudgets &budgets)
{
    elab_.budget = budgets.elabBytes;
    report_.budget = budgets.verifyBytes;
    program_.budget = budgets.programBytes;
}

std::shared_ptr<const Elaboration>
ArtifactCache::findElaboration(uint64_t key)
{
    std::lock_guard<std::mutex> lock(mtx_);
    return std::static_pointer_cast<const Elaboration>(
        elab_.find(key));
}

void
ArtifactCache::putElaboration(uint64_t key,
                              std::shared_ptr<const Elaboration> e)
{
    std::lock_guard<std::mutex> lock(mtx_);
    size_t entry_bytes = e->byteSize;
    elab_.put(key, std::move(e), entry_bytes);
}

std::shared_ptr<const verify::Report>
ArtifactCache::findReport(uint64_t key)
{
    std::lock_guard<std::mutex> lock(mtx_);
    return std::static_pointer_cast<const verify::Report>(
        report_.find(key));
}

void
ArtifactCache::putReport(uint64_t key,
                         std::shared_ptr<const verify::Report> r)
{
    std::lock_guard<std::mutex> lock(mtx_);
    size_t entry_bytes = estimateReportBytes(*r);
    report_.put(key, std::move(r), entry_bytes);
}

std::shared_ptr<const ArtifactCache::ProgramSet>
ArtifactCache::findPrograms(uint64_t key)
{
    std::lock_guard<std::mutex> lock(mtx_);
    return std::static_pointer_cast<const ProgramSet>(
        program_.find(key));
}

void
ArtifactCache::putPrograms(uint64_t key,
                           std::shared_ptr<const ProgramSet> set)
{
    std::lock_guard<std::mutex> lock(mtx_);
    size_t entry_bytes = sizeof(ProgramSet);
    for (const auto &p : *set)
        if (p)
            entry_bytes += p->byteSize();
    program_.put(key, std::move(set), entry_bytes);
}

CacheShardStats
ArtifactCache::elabStats() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    return elab_.snapshot();
}

CacheShardStats
ArtifactCache::reportStats() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    return report_.snapshot();
}

CacheShardStats
ArtifactCache::programStats() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    return program_.snapshot();
}

void
ArtifactCache::clear()
{
    std::lock_guard<std::mutex> lock(mtx_);
    elab_.clear();
    report_.clear();
    program_.clear();
}

// --- footprint estimates ------------------------------------------

size_t
estimatePlanBytes(const ripper::PartitionPlan &plan)
{
    size_t bytes = sizeof(ripper::PartitionPlan);
    for (const auto &circuit : plan.partitions) {
        std::ostringstream os;
        firrtl::printCircuit(os, circuit);
        // The in-memory IR is node objects, not text; the printed
        // form underestimates it, so scale it up.
        bytes += os.str().size() * 4;
    }
    bytes += plan.nets.size() * sizeof(ripper::BoundaryNet);
    for (const auto &ch : plan.channels)
        bytes += sizeof(ripper::ChannelPlan) +
                 ch.netIndices.size() * sizeof(int);
    return bytes;
}

size_t
estimateReportBytes(const verify::Report &report)
{
    size_t bytes = sizeof(verify::Report);
    for (const auto &d : report.diagnostics())
        bytes += sizeof(verify::Diagnostic) + d.code.size() +
                 d.message.size() + d.loc.partition.size() +
                 d.loc.module.size() + d.loc.signal.size();
    return bytes;
}

} // namespace fireaxe::svc
