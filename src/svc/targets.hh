/**
 * @file
 * The shipped-target registry: every src/target design with its
 * canonical FireRipper partition spec, under one stable name. The
 * command-line tools (`fireaxe-run --target NAME`, fireaxe-lint) and
 * the simulation service (`fireaxed`, src/svc/jobspec.hh) all resolve
 * targets here, so a job submitted over the wire names exactly the
 * same designs a local CLI run does.
 */

#ifndef FIREAXE_SVC_TARGETS_HH
#define FIREAXE_SVC_TARGETS_HH

#include <string>
#include <vector>

#include "firrtl/ir.hh"
#include "ripper/partition.hh"

namespace fireaxe::svc {

/** One shipped design with its canonical partition spec. */
struct TargetInfo
{
    const char *name;
    const char *summary;
    firrtl::Circuit (*build)();
    ripper::PartitionSpec (*spec)(const firrtl::Circuit &);
};

/** Every shipped target, in listing order. */
const std::vector<TargetInfo> &targetRegistry();

/** Registry entry by name; nullptr if unknown. */
const TargetInfo *findTarget(const std::string &name);

} // namespace fireaxe::svc

#endif // FIREAXE_SVC_TARGETS_HH
