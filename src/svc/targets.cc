#include "svc/targets.hh"

#include <set>

#include "ripper/nocselect.hh"
#include "target/accelerators.hh"
#include "target/big_core.hh"
#include "target/bus_soc.hh"
#include "target/noc_soc.hh"
#include "target/paper_examples.hh"

namespace fireaxe::svc {

namespace {

ripper::PartitionSpec
singleGroup(const char *group, std::set<std::string> paths)
{
    ripper::PartitionSpec spec;
    spec.groups.push_back({group, std::move(paths), 1});
    return spec;
}

} // namespace

const std::vector<TargetInfo> &
targetRegistry()
{
    static const std::vector<TargetInfo> targets = {
        {"fig2", "paper Fig. 2 two-block example",
         [] { return target::buildFig2Target(); },
         [](const firrtl::Circuit &) {
             return singleGroup("blockB", {"blockB"});
         }},
        {"fig3", "paper Fig. 3 producer/consumer example",
         [] { return target::buildFig3Target(); },
         [](const firrtl::Circuit &) {
             return singleGroup("consumer", {"consumer"});
         }},
        {"bus-soc", "bus-based SoC, two tiles pulled out",
         [] {
             target::BusSocConfig cfg;
             cfg.numTiles = 4;
             cfg.memWords = 256;
             return target::buildBusSoc(cfg);
         },
         [](const firrtl::Circuit &) {
             return singleGroup("tiles", target::busSocTilePaths(2));
         }},
        {"ring-noc", "ring NoC SoC, one router node pulled out",
         [] {
             target::RingNocSocConfig cfg;
             cfg.numNodes = 4;
             cfg.memWords = 256;
             return target::buildRingNocSoc(cfg);
         },
         [](const firrtl::Circuit &soc) {
             return singleGroup("n1", ripper::selectNocGroup(soc, {1}));
         }},
        {"big-core", "frontend/backend split core (§V-B)",
         [] {
             target::BigCoreConfig cfg;
             cfg.fetchWidth = 2;
             cfg.fieldsPerInst = 3;
             cfg.traceWords = 4;
             cfg.lsuWords = 2;
             return target::buildBigCore(cfg);
         },
         [](const firrtl::Circuit &) {
             return singleGroup("backend", {"backend"});
         }},
        {"sha3", "SHA-3 accelerator SoC",
         [] {
             target::Sha3Config cfg;
             cfg.roundCycles = 50;
             return target::buildSha3Soc(cfg);
         },
         [](const firrtl::Circuit &) {
             return singleGroup("accel", {"accel"});
         }},
        {"gemmini", "Gemmini-style accelerator SoC",
         [] {
             target::GemminiConfig cfg;
             cfg.macCycles = 500;
             return target::buildGemminiSoc(cfg);
         },
         [](const firrtl::Circuit &) {
             return singleGroup("accel", {"accel"});
         }},
        {"boot", "boot-ROM instruction-stream SoC",
         [] {
             target::BootConfig cfg;
             cfg.instructions = 2000;
             cfg.fenceInterval = 256;
             return target::buildBootSoc(cfg);
         },
         [](const firrtl::Circuit &) {
             return singleGroup("accel", {"accel"});
         }},
    };
    return targets;
}

const TargetInfo *
findTarget(const std::string &name)
{
    for (const auto &t : targetRegistry())
        if (name == t.name)
            return &t;
    return nullptr;
}

} // namespace fireaxe::svc
