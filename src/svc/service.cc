#include "svc/service.hh"

#include <ostream>
#include <streambuf>
#include <utility>

#include "platform/executor.hh"
#include "svc/jobrunner.hh"
#include "svc/protocol.hh"

namespace fireaxe::svc {

namespace {

/**
 * std::ostream adapter that forwards every complete line to a
 * callback (the JSONL telemetry → protocol seam). StreamWriter emits
 * exactly one JSON object per '\n', so buffering to newlines
 * reconstructs whole telemetry lines regardless of how the stream
 * chunks its writes.
 */
class LineForwardBuf : public std::streambuf
{
  public:
    using LineFn = std::function<void(const std::string &)>;

    explicit LineForwardBuf(LineFn fn) : fn_(std::move(fn)) {}

  protected:
    int
    overflow(int ch) override
    {
        if (ch == traits_type::eof())
            return 0;
        if (ch == '\n') {
            if (!buf_.empty())
                fn_(buf_);
            buf_.clear();
        } else {
            buf_.push_back(char(ch));
        }
        return ch;
    }

    std::streamsize
    xsputn(const char *s, std::streamsize n) override
    {
        for (std::streamsize i = 0; i < n; ++i)
            overflow(traits_type::to_int_type(s[i]));
        return n;
    }

  private:
    LineFn fn_;
    std::string buf_;
};

} // namespace

SimService::SimService(const ServiceConfig &cfg)
    : cfg_(cfg), cache_(cfg.cache)
{
    unsigned n = cfg_.workers ? cfg_.workers : 1;
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

SimService::~SimService()
{
    drain();
}

uint64_t
SimService::submit(const JobSpec &spec, EventSink sink)
{
    uint64_t id;
    bool rejected;
    {
        std::lock_guard<std::mutex> lock(mtx_);
        id = nextId_++;
        rejected = draining_;
        if (rejected) {
            done_.insert(id);
            ++completed_;
        }
    }
    if (rejected) {
        if (sink)
            sink(errorLine(id, "draining",
                           "service is draining; job rejected"));
        doneCv_.notify_all();
        return id;
    }
    // "queued" goes out before the job becomes visible to workers,
    // so the sink's status edges are always in lifecycle order.
    if (sink)
        sink(statusLine(id, "queued"));
    {
        std::lock_guard<std::mutex> lock(mtx_);
        if (draining_) {
            done_.insert(id);
            ++completed_;
            rejected = true;
        } else {
            queue_.push_back(Job{id, spec, sink});
        }
    }
    if (rejected) {
        if (sink)
            sink(errorLine(id, "draining",
                           "service is draining; job rejected"));
        doneCv_.notify_all();
        return id;
    }
    workCv_.notify_one();
    return id;
}

void
SimService::waitAll()
{
    std::unique_lock<std::mutex> lock(mtx_);
    doneCv_.wait(lock, [this] {
        return queue_.empty() && active_.empty();
    });
}

bool
SimService::waitJob(uint64_t id)
{
    std::unique_lock<std::mutex> lock(mtx_);
    if (id == 0 || id >= nextId_)
        return false;
    doneCv_.wait(lock, [&] { return done_.count(id) > 0; });
    return true;
}

void
SimService::drain()
{
    std::deque<Job> rejected;
    {
        std::unique_lock<std::mutex> lock(mtx_);
        draining_ = true;
        rejected.swap(queue_);
        // In-flight jobs quiesce at their next run()-boundary; the
        // runner then commits a resumable snapshot for jobs that
        // have a snapshot directory.
        for (auto &[id, sim] : active_)
            sim->requestStop();
        for (const Job &job : rejected) {
            done_.insert(job.id);
            ++completed_;
        }
    }
    for (const Job &job : rejected)
        if (job.sink)
            job.sink(errorLine(job.id, "draining",
                               "service is draining; job rejected"));
    doneCv_.notify_all();
    workCv_.notify_all();
    for (auto &t : workers_)
        if (t.joinable())
            t.join();
}

bool
SimService::draining() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    return draining_;
}

uint64_t
SimService::jobsSubmitted() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    return nextId_ - 1;
}

uint64_t
SimService::jobsActive() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    return active_.size();
}

uint64_t
SimService::jobsCompleted() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    return completed_;
}

void
SimService::workerLoop()
{
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(mtx_);
            workCv_.wait(lock, [this] {
                return !queue_.empty() || draining_;
            });
            if (queue_.empty())
                return; // draining and nothing left
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        runOne(std::move(job));
    }
}

void
SimService::runOne(Job job)
{
    JobRunner runner(job.spec, &cache_);
    if (!runner.prepare()) {
        const RunOutcome &o = runner.outcome();
        if (job.sink) {
            const char *code =
                !o.verifyReport.empty() ? "verify"
                : o.exitCode == 2       ? "bad_request"
                                        : "failed";
            job.sink(
                errorLine(job.id, code, o.error, o.verifyReport));
        }
        finishJob(job.id);
        return;
    }

    {
        std::unique_lock<std::mutex> lock(mtx_);
        active_[job.id] = runner.sim();
        // A drain that raced this job's registration still stops it:
        // requestStop is sticky, and run() checks it up front.
        if (draining_)
            runner.sim()->requestStop();
    }
    if (job.sink)
        job.sink(statusLine(job.id, "running"));

    // Telemetry → protocol forwarding, when the job asked to stream.
    std::unique_ptr<LineForwardBuf> buf;
    std::unique_ptr<std::ostream> sink_os;
    if (job.spec.stream && job.sink) {
        buf = std::make_unique<LineForwardBuf>(
            [&job](const std::string &line) {
                job.sink(streamLine(job.id, line));
            });
        sink_os = std::make_unique<std::ostream>(buf.get());
    }

    const RunOutcome &o = runner.execute(sink_os.get());

    {
        // Erase before the runner (and its sim) dies so drain never
        // touches a dead pointer.
        std::lock_guard<std::mutex> lock(mtx_);
        active_.erase(job.id);
    }

    if (job.sink) {
        if (o.ok || o.result.deadlocked || o.result.stopped)
            job.sink(resultLine(job.id, job.spec.target, o));
        else
            job.sink(errorLine(job.id, "failed", o.error,
                               o.verifyReport));
    }
    finishJob(job.id);
}

void
SimService::finishJob(uint64_t id)
{
    {
        std::lock_guard<std::mutex> lock(mtx_);
        done_.insert(id);
        ++completed_;
    }
    doneCv_.notify_all();
}

} // namespace fireaxe::svc
