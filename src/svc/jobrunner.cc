#include "svc/jobrunner.hh"

#include <algorithm>
#include <chrono>

#include "platform/fpga.hh"
#include "recovery/snapshot.hh"
#include "rtlsim/engine.hh"
#include "svc/targets.hh"
#include "transport/fault.hh"
#include "transport/link.hh"
#include "verify/verify.hh"

namespace fireaxe::svc {

namespace {

double
elapsedNs(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::nano>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

constexpr uint64_t kFnvOffset = 1469598103934665603ull;

} // namespace

JobRunner::JobRunner(JobSpec spec, ArtifactCache *cache)
    : spec_(std::move(spec)), cache_(cache)
{}

JobRunner::~JobRunner() = default;

bool
JobRunner::elaborate()
{
    auto t0 = std::chrono::steady_clock::now();
    uint64_t key = spec_.elabSignature();
    if (cache_)
        elab_ = cache_->findElaboration(key);
    if (elab_) {
        outcome_.elabCacheHit = true;
    } else {
        const TargetInfo *t = findTarget(spec_.target);
        auto circuit = t->build();
        auto pspec = t->spec(circuit);
        pspec.mode = spec_.mode == "fast"
                         ? ripper::PartitionMode::Fast
                         : ripper::PartitionMode::Exact;
        auto fresh = std::make_shared<Elaboration>();
        fresh->plan = ripper::partition(circuit, pspec);
        if (spec_.channelCapacity >= 0)
            for (auto &ch : fresh->plan.channels)
                ch.capacity = size_t(spec_.channelCapacity);
        fresh->contentHash = platform::contentHash(fresh->plan);
        fresh->byteSize = estimatePlanBytes(fresh->plan);
        elab_ = fresh;
        if (cache_)
            cache_->putElaboration(key, elab_);
    }
    outcome_.elaborateNs = elapsedNs(t0);
    outcome_.artifactHash = elab_->contentHash;
    return true;
}

bool
JobRunner::verifyPhase()
{
    auto t0 = std::chrono::steady_clock::now();
    std::shared_ptr<const verify::Report> report;
    if (cache_)
        report = cache_->findReport(elab_->contentHash);
    if (report) {
        outcome_.verifyCacheHit = true;
    } else {
        // Same options as the executor's own pre-flight gate (IR005
        // dead-logic is too noisy for a hard gate), so skipping the
        // executor's verification below loses nothing.
        verify::Options opts;
        opts.checkDeadLogic = false;
        auto fresh = std::make_shared<verify::Report>(
            verify::verifyPlan(elab_->plan, opts));
        report = fresh;
        if (cache_)
            cache_->putReport(elab_->contentHash, report);
    }
    outcome_.verifyNs = elapsedNs(t0);
    if (report->hasErrors()) {
        outcome_.error = "plan rejected by static verification";
        outcome_.verifyReport = report->renderText();
        outcome_.exitCode = 3;
        return false;
    }
    if (!report->empty())
        outcome_.verifyReport = report->renderText();
    return true;
}

bool
JobRunner::prepare()
{
    std::string bad = spec_.validate();
    if (!bad.empty()) {
        outcome_.error = bad;
        outcome_.exitCode = 2;
        return false;
    }
    try {
        if (!elaborate() || !verifyPhase())
            return false;

        const auto &plan = elab_->plan;
        std::vector<platform::FpgaSpec> fpgas(
            plan.partitions.size(), platform::alveoU250(100.0));
        sim_ = std::make_unique<platform::MultiFpgaSim>(
            plan, fpgas, transport::qsfpAurora());
        // The plan was verified (or fetched verified) above — don't
        // pay for the executor's own pre-flight pass again.
        sim_->setVerifyPolicy(platform::VerifyPolicy::Off);

        if (spec_.faultRate > 0.0)
            sim_->setFaultModel(transport::FaultConfig::uniform(
                spec_.faultRate, spec_.seed));

        platform::ExecConfig exec;
        exec.backend = spec_.backend == "parallel"
                           ? platform::ExecBackend::Parallel
                           : platform::ExecBackend::Sequential;
        exec.workers = spec_.workers;
        if (!spec_.engine.empty())
            exec.evalEngine = rtlsim::parseEvalEngine(spec_.engine);
        if (spec_.batchDepth > 0)
            exec.batchDepth = spec_.batchDepth;
        exec.snapshotEveryCycles = spec_.snapshotEvery;
        exec.snapshotDir = spec_.snapshotDir;
        sim_->setExecConfig(exec);

        outcome_.planHash = sim_->planHash();
        prepared_ = true;
        return true;
    } catch (const std::exception &e) {
        outcome_.error = e.what();
        outcome_.exitCode = 3;
        return false;
    }
}

const RunOutcome &
JobRunner::execute(std::ostream *stream_sink)
{
    if (!prepared_) {
        if (outcome_.error.empty()) {
            outcome_.error = "execute() without a prepared job";
            outcome_.exitCode = 3;
        }
        return outcome_;
    }
    try {
        const auto &plan = elab_->plan;
        size_t nparts = plan.partitions.size();

        if (stream_sink || spec_.stream ||
            !spec_.streamPath.empty()) {
            obs::TelemetryConfig tcfg;
            tcfg.streamSink = stream_sink;
            tcfg.streamPath = spec_.streamPath;
            tcfg.tokenSampleEvery = spec_.sampleEvery;
            tcfg.streamEveryCycles = spec_.streamEvery;
            tcfg.runLabel = spec_.target;
            sim_->setTelemetry(tcfg);
        }

        // Per-partition running trace hash; single writer per slot
        // under either backend (each monitor runs on its partition's
        // owning thread). Cycles below hashFrom stay excluded
        // symmetrically in resumed and golden runs.
        outcome_.hashFrom = spec_.hashFrom;
        traceHash_.assign(nparts, kFnvOffset);
        for (size_t p = 0; p < nparts; ++p) {
            sim_->setMonitor(
                int(p), [this, p](rtlsim::Simulator &s,
                                  unsigned thread, uint64_t cycle) {
                    if (cycle < outcome_.hashFrom)
                        return;
                    uint64_t h = traceHash_[p];
                    h = recovery::fnv1aMix(h, cycle);
                    h = recovery::fnv1aMix(h, thread);
                    for (size_t i = 0; i < s.numSignals(); ++i)
                        h = recovery::fnv1aMix(h, s.peekIdx(int(i)));
                    traceHash_[p] = h;
                });
        }

        // Seed cached compiled bytecode programs before init builds
        // the simulators; a shape mismatch degrades to a fresh
        // compile inside the engine, never to wrong results.
        bool compiled_engine =
            sim_->execConfig().evalEngine ==
            rtlsim::EvalEngine::Compiled;
        if (compiled_engine && cache_) {
            if (auto set = cache_->findPrograms(elab_->contentHash)) {
                outcome_.programCacheHit = true;
                sim_->setPrecompiledPrograms(*set);
            }
        }

        auto t0 = std::chrono::steady_clock::now();
        sim_->init();
        outcome_.initNs = elapsedNs(t0);

        // Harvest freshly compiled programs so the next submission
        // of this content skips compilation.
        if (compiled_engine && cache_ && !outcome_.programCacheHit) {
            auto set = std::make_shared<ArtifactCache::ProgramSet>();
            bool complete = true;
            for (size_t p = 0; p < nparts; ++p) {
                set->push_back(sim_->compiledProgram(int(p)));
                complete = complete && set->back() != nullptr;
            }
            if (complete)
                cache_->putPrograms(elab_->contentHash, set);
        }

        if (spec_.resume) {
            std::string error;
            if (!sim_->restore(spec_.snapshotDir, error)) {
                outcome_.error = "restore failed: " + error;
                outcome_.exitCode = 3;
                return outcome_;
            }
            // Partitions may sit at different cycles at the cut; the
            // comparable suffix starts where the furthest one
            // resumes.
            for (size_t p = 0; p < nparts; ++p)
                outcome_.resumeCycle = std::max(
                    outcome_.resumeCycle,
                    sim_->model(int(p)).minTargetCycle());
            outcome_.hashFrom =
                std::max(outcome_.hashFrom, outcome_.resumeCycle);
        }

        t0 = std::chrono::steady_clock::now();
        outcome_.result = sim_->run(spec_.cycles);
        outcome_.runNs = elapsedNs(t0);

        // A drain (requestStop) leaves the sim at a quiesce point;
        // commit a resumable snapshot when the job has somewhere to
        // put one.
        if (outcome_.result.stopped && sim_->stopRequested() &&
            !spec_.snapshotDir.empty()) {
            std::string error;
            if (!sim_->snapshot(spec_.snapshotDir, error))
                outcome_.error = "drain snapshot failed: " + error;
        }

        uint64_t trace = kFnvOffset;
        for (size_t p = 0; p < nparts; ++p)
            trace = recovery::fnv1aMix(trace, traceHash_[p]);
        outcome_.traceHash = trace;

        uint64_t final_sig = kFnvOffset;
        for (size_t p = 0; p < nparts; ++p) {
            const auto &m = sim_->model(int(p));
            final_sig =
                recovery::fnv1aMix(final_sig, m.minTargetCycle());
            for (size_t i = 0; i < m.sim().numSignals(); ++i)
                final_sig = recovery::fnv1aMix(
                    final_sig, m.sim().peekIdx(int(i)));
        }
        outcome_.finalSig = final_sig;

        outcome_.snapshots = sim_->snapshotCount();
        outcome_.snapshotBytes = sim_->lastSnapshotBytes();
        outcome_.snapshotWallMs = sim_->totalSnapshotWallMs();
        outcome_.restores = sim_->restoreCount();

        outcome_.ok = outcome_.error.empty() &&
                      !outcome_.result.deadlocked;
        outcome_.exitCode = outcome_.result.deadlocked ? 4
                            : outcome_.ok              ? 0
                                                       : 3;
        return outcome_;
    } catch (const std::exception &e) {
        outcome_.ok = false;
        outcome_.error = e.what();
        outcome_.exitCode = 3;
        return outcome_;
    }
}

RunOutcome
runJob(const JobSpec &spec, ArtifactCache *cache,
       std::ostream *stream_sink)
{
    JobRunner runner(spec, cache);
    if (!runner.prepare())
        return runner.outcome();
    return runner.execute(stream_sink);
}

} // namespace fireaxe::svc
