/**
 * @file
 * The content-addressed compiled-artifact cache at the centre of the
 * simulation service.
 *
 * Three artifact kinds are cached, each in its own LRU shard with its
 * own byte budget:
 *
 *  - Elaboration — the FireRipper PartitionPlan for a job shape,
 *    keyed by JobSpec::elabSignature() (target + mode + capacity
 *    override): what elaboration *produces* is determined by what it
 *    was asked to build.
 *  - Verify reports — the static verifier's Report for a plan, keyed
 *    by platform::contentHash(plan): the checks are pure functions of
 *    the elaborated IR + plan structure.
 *  - Compiled programs — the per-partition rtlsim bytecode programs
 *    (rtlsim::CompiledProgram, immutable and shareable), keyed by the
 *    same content hash: flattening and compilation are deterministic,
 *    so a program compiled from one construction of a partition is
 *    valid for every other construction of the same content.
 *
 * A repeat submission of the same job shape therefore skips straight
 * to execution: elaboration, verification, and bytecode compilation
 * all come out of the cache (see svc::JobRunner). Entries are plain
 * shared_ptr-to-const values — a hit pins the artifact for the using
 * job while eviction stays O(1) and never invalidates users.
 *
 * Thread safety: one mutex per cache instance; every operation is a
 * short map lookup + list splice. The service's worker pool shares
 * one instance.
 */

#ifndef FIREAXE_SVC_CACHE_HH
#define FIREAXE_SVC_CACHE_HH

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "ripper/partition.hh"
#include "rtlsim/compiled.hh"
#include "verify/diag.hh"

namespace fireaxe::svc {

/** Cached elaboration result: the plan plus its content identity. */
struct Elaboration
{
    ripper::PartitionPlan plan;
    /** platform::contentHash(plan), computed once at insertion. */
    uint64_t contentHash = 0;
    /** Rough memory footprint (bytes) used for budget accounting. */
    size_t byteSize = 0;
};

/** Per-shard accounting (also summed into service status lines). */
struct CacheShardStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
    size_t bytes = 0;
    size_t budget = 0;
};

/** Shard budgets; 0 disables a shard (every lookup misses). */
struct CacheBudgets
{
    size_t elabBytes = size_t(64) << 20;
    size_t verifyBytes = size_t(8) << 20;
    size_t programBytes = size_t(64) << 20;
};

class ArtifactCache
{
  public:
    using ProgramSet =
        std::vector<std::shared_ptr<const rtlsim::CompiledProgram>>;

    explicit ArtifactCache(const CacheBudgets &budgets = {});

    // --- elaborations (keyed by JobSpec::elabSignature()) ---------
    std::shared_ptr<const Elaboration> findElaboration(uint64_t key);
    void putElaboration(uint64_t key,
                        std::shared_ptr<const Elaboration> elab);

    // --- verify reports (keyed by platform::contentHash) ----------
    std::shared_ptr<const verify::Report> findReport(uint64_t key);
    void putReport(uint64_t key,
                   std::shared_ptr<const verify::Report> report);

    // --- compiled program sets (keyed by platform::contentHash) ---
    std::shared_ptr<const ProgramSet> findPrograms(uint64_t key);
    void putPrograms(uint64_t key,
                     std::shared_ptr<const ProgramSet> programs);

    CacheShardStats elabStats() const;
    CacheShardStats reportStats() const;
    CacheShardStats programStats() const;

    /** Drop everything (budgets and lifetime hit/miss counters
     *  survive). */
    void clear();

  private:
    /**
     * One LRU shard: insertion-keyed map over a recency list. The
     * payload is type-erased; the typed accessors above are the only
     * way in and out, so a key can never alias across kinds.
     */
    struct Shard
    {
        struct Entry
        {
            uint64_t key = 0;
            std::shared_ptr<const void> value;
            size_t bytes = 0;
        };

        size_t budget = 0;
        size_t bytes = 0;
        std::list<Entry> lru; ///< front = most recently used
        std::unordered_map<uint64_t, std::list<Entry>::iterator> map;
        CacheShardStats stats;

        std::shared_ptr<const void> find(uint64_t key);
        void put(uint64_t key, std::shared_ptr<const void> value,
                 size_t bytes);
        void clear();
        CacheShardStats snapshot() const;
    };

    mutable std::mutex mtx_;
    Shard elab_;
    Shard report_;
    Shard program_;
};

/** Rough footprint of a partition plan (for budget accounting):
 *  printed-text length of every partition circuit plus the plan's
 *  net/channel tables. */
size_t estimatePlanBytes(const ripper::PartitionPlan &plan);

/** Rough footprint of a verify report. */
size_t estimateReportBytes(const verify::Report &report);

} // namespace fireaxe::svc

#endif // FIREAXE_SVC_CACHE_HH
