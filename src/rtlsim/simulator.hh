/**
 * @file
 * Cycle-accurate RTL interpreter over a flattened circuit.
 *
 * This plays two roles in the reproduction:
 *  - the "monolithic FireSim simulation" golden reference of Table II
 *    (a non-partitioned, cycle-exact execution of the target design);
 *  - the per-partition target-model evaluator inside each LI-BDN
 *    (src/libdn), where it is invoked with partial input knowledge —
 *    an output value is only *read* once all inputs it combinationally
 *    depends on are known, which the dependency matrix computed here
 *    guarantees is safe.
 *
 * The interpreter compiles every connect expression to a small postfix
 * program evaluated on a value stack, orders all combinational
 * evaluation nodes topologically once at construction, and then
 * evaluates cycles with no allocation.
 */

#ifndef FIREAXE_RTLSIM_SIMULATOR_HH
#define FIREAXE_RTLSIM_SIMULATOR_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "firrtl/ir.hh"
#include "rtlsim/engine.hh"

namespace fireaxe::rtlsim {

class CompiledEngine;
struct CompiledProgram;
struct ProgramBuilder;

/** Categories of flat signals. */
enum class SigKind { Input, Output, Comb, Reg };

/** One signal slot in the flat value table. */
struct Signal
{
    std::string name;
    unsigned width;
    SigKind kind;
    uint64_t init = 0;
};

/** Snapshot of all sequential state (registers + memory contents).
 *  Used by the FAME-5 model to hold one copy per thread. */
struct SeqState
{
    std::vector<uint64_t> regValues;
    std::vector<std::vector<uint64_t>> memContents;
};

/**
 * The interpreter. Construct from a circuit whose top module is fully
 * flat (no instances) — see passes::flattenAll().
 */
class Simulator
{
  public:
    /**
     * @param flat_circuit the design (top must be instance-free).
     * @param engine       evaluation engine; both engines are
     *                     bit-exact, Compiled adds one-shot bytecode
     *                     compilation plus activity gating (see
     *                     rtlsim/engine.hh). Defaults to the
     *                     process-wide FIREAXE_EVAL choice.
     * @param precompiled  optional shared compiled program (Compiled
     *                     engine only) harvested from an earlier
     *                     simulator of the same flat circuit — the
     *                     content-addressed artifact the service
     *                     cache stores. A mismatched program is
     *                     ignored (fresh compile) with a warning.
     */
    explicit Simulator(
        const firrtl::Circuit &flat_circuit,
        EvalEngine engine = defaultEvalEngine(),
        std::shared_ptr<const CompiledProgram> precompiled = nullptr);
    ~Simulator();

    // The compiled engine holds a back-reference to this simulator,
    // so the object must stay put.
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** The engine this simulator evaluates with. */
    EvalEngine evalEngine() const { return engine_; }

    /** The shared compiled program backing this simulator (null
     *  under Interpret). Shareable with any simulator of the same
     *  flat circuit — this is what the artifact cache stores. */
    std::shared_ptr<const CompiledProgram> compiledProgram() const;

    /** Evaluation-node executions across all evalComb() calls (the
     *  interpreter evaluates every node every call). */
    uint64_t nodesEvaluated() const;
    /** Nodes skipped by activity gating (0 under Interpret). */
    uint64_t nodesSkipped() const;
    /** Total evaluation nodes in the design. */
    size_t numNodes() const { return nodes_.size(); }

    /** Index of a signal by flat name; -1 if unknown. */
    int signalIndex(const std::string &name) const;

    /** Signal metadata. */
    const Signal &signal(int idx) const { return signals_[idx]; }
    size_t numSignals() const { return signals_.size(); }

    /** Set an input (or any) signal value; takes effect at the next
     *  evalComb(). */
    void poke(const std::string &name, uint64_t value);
    void pokeIdx(int idx, uint64_t value);

    /** Read a signal's current value (call evalComb() first for comb
     *  signals). */
    uint64_t peek(const std::string &name) const;
    uint64_t peekIdx(int idx) const { return values_[idx]; }

    /** Recompute all combinational signals and register next-values
     *  from the current inputs and sequential state. */
    void evalComb();

    /** Advance one clock: latch register next-values and perform
     *  memory writes (as computed by the last evalComb()), then
     *  re-evaluate combinational logic. */
    void step();

    /** Run evalComb+step for @p n cycles. */
    void run(uint64_t n);

    /** Restore all state (registers, memories, inputs) to initial
     *  values and re-evaluate. */
    void reset();

    uint64_t cycle() const { return cycle_; }

    /** Indices of input / output port signals, in port order. */
    const std::vector<int> &inputs() const { return inputs_; }
    const std::vector<int> &outputs() const { return outputs_; }

    /** For an output signal index: indices of the *input* signals it
     *  combinationally depends on. Source outputs (paper terminology)
     *  have empty sets. */
    const std::set<int> &outputDeps(int output_idx) const;

    /** Copy out / restore sequential state (FAME-5 thread swap). */
    void saveState(SeqState &out) const;
    void loadState(const SeqState &in);

    /**
     * Serialize the full simulation state (cycle count, every signal
     * value, memory contents) to a stream, and restore it later —
     * LiveSim-style checkpointing so long runs can resume or fork.
     *
     * tryLoadCheckpoint() validates the whole stream against this
     * simulator's design before committing anything: on failure it
     * returns false with a diagnostic in @p error and leaves the
     * simulator state untouched, so recovery code can reject a
     * stale or corrupt snapshot gracefully. loadCheckpoint() is the
     * fatal()ing wrapper kept for CLI callers.
     */
    void saveCheckpoint(std::ostream &os) const;
    bool tryLoadCheckpoint(std::istream &is, std::string &error);
    void loadCheckpoint(std::istream &is);

    /** Direct access to memory words (for loading test programs). */
    void writeMem(const std::string &mem_name, uint64_t addr,
                  uint64_t data);
    uint64_t readMem(const std::string &mem_name, uint64_t addr) const;

  private:
    friend class CompiledEngine;
    friend struct ProgramBuilder;

    struct POp
    {
        enum Kind : uint8_t {
            PushLit, PushSig, Un, Bin, Mux, Bits, Cat
        } kind;
        firrtl::UnOpKind un;
        firrtl::BinOpKind bin;
        unsigned width = 0;
        uint64_t lit = 0;
        int sig = -1;
        unsigned hi = 0, lo = 0;
        unsigned lowWidth = 0;
    };

    struct CompiledExpr
    {
        std::vector<POp> ops;
    };

    enum class NodeKind { CombAssign, MemRead, RegNext };

    struct EvalNode
    {
        NodeKind kind;
        int lhs;        // signal index written (or reg index target)
        int mem = -1;   // for MemRead: memory index
        CompiledExpr expr;
        unsigned lhsWidth = 0;
        std::vector<int> readSigs; // signal indices read
    };

    struct MemInfo
    {
        std::string name;
        unsigned depth;
        unsigned width;
        int raddr, rdata, waddr, wdata, wen;
    };

    void compileExpr(const firrtl::ExprPtr &expr, CompiledExpr &out);
    uint64_t evalExpr(const CompiledExpr &expr) const;
    void buildTopoOrder();
    void buildDepMatrix();

    std::vector<Signal> signals_;
    std::map<std::string, int> signalIdx_;
    std::vector<uint64_t> values_;
    std::vector<MemInfo> mems_;
    std::vector<std::vector<uint64_t>> memData_;
    std::vector<EvalNode> nodes_;
    std::vector<int> evalOrder_;    // node indices, topo-sorted
    std::vector<int> regSigs_;      // signal indices of registers
    std::vector<uint64_t> regNext_; // pending next values per register
    std::vector<bool> regHasNext_;  // whether a driver exists
    std::map<int, int> regNextSlot_; // reg signal idx -> slot
    std::vector<int> inputs_;
    std::vector<int> outputs_;
    std::map<int, std::set<int>> outputDeps_;
    mutable std::vector<uint64_t> stack_;
    uint64_t cycle_ = 0;
    EvalEngine engine_ = EvalEngine::Interpret;
    /** Non-null iff engine_ == Compiled. */
    std::unique_ptr<CompiledEngine> compiled_;
    /** Interpreter-side node-execution counter. */
    uint64_t interpEvaluated_ = 0;
};

} // namespace fireaxe::rtlsim

#endif // FIREAXE_RTLSIM_SIMULATOR_HH
