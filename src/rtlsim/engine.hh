/**
 * @file
 * Evaluation-engine selection for the RTL simulator.
 *
 * The simulator ships two bit-exact evaluation engines:
 *
 *  - Interpret — the original postfix interpreter: every cycle walks
 *    the full topological order and re-evaluates every node on a
 *    value stack. Simple, and the semantic reference.
 *  - Compiled  — a one-shot compiler that linearizes all node
 *    programs into a single contiguous bytecode buffer with fused
 *    common patterns, driven by activity gating: per-node dirty bits
 *    fed by a signal→reader adjacency table, so a cycle only
 *    evaluates nodes whose read set actually changed, in levelized
 *    order.
 *
 * Both engines produce identical results for every observable
 * operation (peek/poke, checkpoints, saved state, output
 * dependencies); the choice is purely a host-performance knob.
 * The process-wide default honours the FIREAXE_EVAL environment
 * variable ("interpret" or "compiled").
 */

#ifndef FIREAXE_RTLSIM_ENGINE_HH
#define FIREAXE_RTLSIM_ENGINE_HH

#include <string>

namespace fireaxe::rtlsim {

/** Which evaluation engine a Simulator uses. */
enum class EvalEngine { Interpret, Compiled };

/** "interpret" / "compiled". */
const char *toString(EvalEngine engine);

/** Parse an engine name; fatal() on anything unknown. */
EvalEngine parseEvalEngine(const std::string &name);

/**
 * The process default: FIREAXE_EVAL if set (and non-empty), else
 * Interpret. Read afresh on every call so tests can flip the
 * environment between simulator constructions.
 */
EvalEngine defaultEvalEngine();

} // namespace fireaxe::rtlsim

#endif // FIREAXE_RTLSIM_ENGINE_HH
