/**
 * @file
 * The compiled, activity-gated evaluation engine (EvalEngine::
 * Compiled).
 *
 * Construction performs a one-shot compilation of every EvalNode's
 * postfix program into a single contiguous bytecode buffer:
 *
 *  - every leaf operand (signal or literal) becomes an operand
 *    reference — non-negative refs index the simulator's live value
 *    table, negative refs index a deduplicated constant pool — so
 *    fused instructions handle signal and literal operands
 *    uniformly;
 *  - common shapes are fused into single instructions (binop over
 *    two leaves, binop with the left operand on the stack, mux over
 *    three leaves, bit-extract / unary / cat over leaves);
 *  - anything else falls back to the generic stack forms, so the
 *    engine evaluates arbitrary expressions.
 *
 * The product of that compilation is a CompiledProgram: an immutable
 * value derived solely from the flat circuit (bytecode, per-node
 * records, constant pool, signal→reader CSR table, producer maps,
 * levelized ranks). Because it holds no live state, a program is
 * shareable: any number of Simulator instances constructed from the
 * same flat circuit can evaluate through one shared program — this
 * is the content-addressed compiled artifact the service cache
 * (src/svc) stores so a repeat submission of a known design skips
 * the compile entirely.
 *
 * Evaluation is driven by activity gating. The program's CSR table
 * maps every signal to the nodes that read it; each node carries a
 * dirty bit (per engine instance) and a levelized rank (longest
 * producer chain). evalComb() drains per-level dirty queues in
 * ascending level order: re-evaluating a node whose output changed
 * marks its readers dirty, which always live at a strictly higher
 * level, so one sweep suffices. A cycle in which nothing changed
 * evaluates nothing.
 *
 * Dirty sources are the simulator's mutation points: pokes that
 * change a value (also re-marking the producing node, so poking a
 * driven wire is overwritten on the next evalComb exactly like the
 * interpreter), registers that latch a new value, memory writes,
 * state restores, and checkpoint loads. The engine keeps no
 * observable state of its own: checkpoints, saved state, and every
 * peek are bit-identical to the interpreter.
 */

#ifndef FIREAXE_RTLSIM_COMPILED_HH
#define FIREAXE_RTLSIM_COMPILED_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "firrtl/ir.hh"

namespace fireaxe::rtlsim {

class Simulator;

/**
 * The immutable compiled form of one flat circuit. Derived solely
 * from the circuit's node programs (never from live values), so one
 * program can back any number of simulator instances of the same
 * design concurrently — engine instances only read it.
 */
struct CompiledProgram
{
    /** One bytecode instruction. Operand refs @c a/b/c: >= 0 is a
     *  live-signal index, < 0 is ~index into the constant pool. */
    struct Instr
    {
        enum Op : uint8_t {
            Push,  ///< push operand a
            UnF,   ///< fused unary on operand a
            BinF,  ///< fused binop over operands a, b
            BinXR, ///< binop: left from stack, right = operand b
            MuxF,  ///< fused mux: sel a, tval b, fval c
            BitsF, ///< fused bit-extract of operand a
            CatF,  ///< fused cat of operands a (high), b (low)
            Un,    ///< stack unary
            Bin,   ///< stack binop
            Mux,   ///< stack mux
            Bits,  ///< stack bit-extract
            Cat,   ///< stack cat
        } op;
        firrtl::UnOpKind un = firrtl::UnOpKind::Not;
        firrtl::BinOpKind bin = firrtl::BinOpKind::Add;
        unsigned width = 0;     ///< result width
        unsigned opw = 0;       ///< unary operand width
        unsigned hi = 0, lo = 0;
        unsigned lowWidth = 0;  ///< cat low-half width
        int32_t a = 0, b = 0, c = 0;
    };

    /** Per-node execution record, indexed like Simulator::nodes_. */
    struct CNode
    {
        enum Kind : uint8_t { Comb, MemRead, RegNext } kind;
        uint32_t start = 0, end = 0; ///< bytecode range
        int lhs = -1;                ///< destination signal
        int mem = -1;                ///< MemRead: memory index
        int regSlot = -1;            ///< RegNext: regNext_ slot
        unsigned width = 0;          ///< destination width
        uint32_t level = 0;          ///< levelized rank
    };

    std::vector<Instr> code;
    std::vector<CNode> cnodes;
    std::vector<uint64_t> consts;
    /** Signal → reading nodes, CSR layout. */
    std::vector<uint32_t> sigReadersOff;
    std::vector<int32_t> sigReaders;
    /** Signal → combinational producer node (CombAssign/MemRead),
     *  -1 when none (inputs, registers). */
    std::vector<int32_t> producer;
    /** Memory index → its MemRead node. */
    std::vector<int32_t> memNode;
    /** Number of distinct levelized ranks (max level + 1). */
    uint32_t numLevels = 1;

    /** Shape fingerprint of the simulator the program was compiled
     *  from — a precompiled program is only adopted when it matches
     *  the constructing simulator exactly. */
    size_t numSignals = 0;
    size_t numMems = 0;
    size_t numNodes = 0;

    /** Approximate resident bytes (cache accounting). */
    size_t byteSize() const;
};

class CompiledEngine
{
  public:
    /**
     * Attach to @p sim. With a null @p program, compile sim's node
     * programs one-shot; with a precompiled program whose shape
     * fingerprint matches, adopt it and skip compilation entirely (a
     * mismatched program is ignored with a warning and a fresh
     * compile — a cache handing over the wrong artifact must never
     * corrupt results). Everything starts dirty either way.
     */
    explicit CompiledEngine(
        Simulator &sim,
        std::shared_ptr<const CompiledProgram> program = nullptr);

    /** The immutable program this engine evaluates (shareable with
     *  other simulators of the same flat circuit). */
    const std::shared_ptr<const CompiledProgram> &program() const
    {
        return prog_;
    }

    /** Evaluate all dirty nodes in levelized order. */
    void evalComb();

    /** A signal's value changed outside evalComb (poke, register
     *  latch, state restore): mark its readers — and, if a
     *  combinational driver exists, the driver itself — dirty. */
    void onSignalWrite(int sig);

    /** A memory's contents changed: mark its read node dirty. */
    void onMemWrite(int mem);

    /** Invalidate everything (reset / checkpoint load). */
    void markAll();

    uint64_t nodesEvaluated() const { return nodesEvaluated_; }
    uint64_t nodesSkipped() const { return nodesSkipped_; }

  private:
    void markNode(int n);
    void markReaders(int sig);
    uint64_t load(int32_t ref) const;
    uint64_t execInstr(const CompiledProgram::Instr &in) const;
    uint64_t execNode(const CompiledProgram::CNode &cn) const;

    Simulator &sim_;
    std::shared_ptr<const CompiledProgram> prog_;
    // Mutable evaluation state, per engine instance (the program
    // itself is shared and read-only).
    std::vector<uint8_t> dirty_;
    std::vector<std::vector<int32_t>> levelQueue_;
    mutable std::vector<uint64_t> stack_;
    uint64_t nodesEvaluated_ = 0;
    uint64_t nodesSkipped_ = 0;
};

/** Compile @p sim's node programs into a fresh shareable program
 *  (what CompiledEngine does internally when handed no program). */
std::shared_ptr<const CompiledProgram>
compileProgram(const Simulator &sim);

} // namespace fireaxe::rtlsim

#endif // FIREAXE_RTLSIM_COMPILED_HH
