/**
 * @file
 * The compiled, activity-gated evaluation engine (EvalEngine::
 * Compiled).
 *
 * Construction performs a one-shot compilation of every EvalNode's
 * postfix program into a single contiguous bytecode buffer:
 *
 *  - every leaf operand (signal or literal) becomes an operand
 *    reference — non-negative refs index the simulator's live value
 *    table, negative refs index a deduplicated constant pool — so
 *    fused instructions handle signal and literal operands
 *    uniformly;
 *  - common shapes are fused into single instructions (binop over
 *    two leaves, binop with the left operand on the stack, mux over
 *    three leaves, bit-extract / unary / cat over leaves);
 *  - anything else falls back to the generic stack forms, so the
 *    engine evaluates arbitrary expressions.
 *
 * Evaluation is driven by activity gating. A signal→reader adjacency
 * table (CSR layout) maps every signal to the nodes that read it;
 * each node carries a dirty bit and a levelized rank (longest
 * producer chain). evalComb() drains per-level dirty queues in
 * ascending level order: re-evaluating a node whose output changed
 * marks its readers dirty, which always live at a strictly higher
 * level, so one sweep suffices. A cycle in which nothing changed
 * evaluates nothing.
 *
 * Dirty sources are the simulator's mutation points: pokes that
 * change a value (also re-marking the producing node, so poking a
 * driven wire is overwritten on the next evalComb exactly like the
 * interpreter), registers that latch a new value, memory writes,
 * state restores, and checkpoint loads. The engine keeps no
 * observable state of its own: checkpoints, saved state, and every
 * peek are bit-identical to the interpreter.
 */

#ifndef FIREAXE_RTLSIM_COMPILED_HH
#define FIREAXE_RTLSIM_COMPILED_HH

#include <cstdint>
#include <vector>

#include "firrtl/ir.hh"

namespace fireaxe::rtlsim {

class Simulator;

class CompiledEngine
{
  public:
    /** Compile @p sim's node programs; everything starts dirty. */
    explicit CompiledEngine(Simulator &sim);

    /** Evaluate all dirty nodes in levelized order. */
    void evalComb();

    /** A signal's value changed outside evalComb (poke, register
     *  latch, state restore): mark its readers — and, if a
     *  combinational driver exists, the driver itself — dirty. */
    void onSignalWrite(int sig);

    /** A memory's contents changed: mark its read node dirty. */
    void onMemWrite(int mem);

    /** Invalidate everything (reset / checkpoint load). */
    void markAll();

    uint64_t nodesEvaluated() const { return nodesEvaluated_; }
    uint64_t nodesSkipped() const { return nodesSkipped_; }

  private:
    /** One bytecode instruction. Operand refs @c a/b/c: >= 0 is a
     *  live-signal index, < 0 is ~index into the constant pool. */
    struct Instr
    {
        enum Op : uint8_t {
            Push,  ///< push operand a
            UnF,   ///< fused unary on operand a
            BinF,  ///< fused binop over operands a, b
            BinXR, ///< binop: left from stack, right = operand b
            MuxF,  ///< fused mux: sel a, tval b, fval c
            BitsF, ///< fused bit-extract of operand a
            CatF,  ///< fused cat of operands a (high), b (low)
            Un,    ///< stack unary
            Bin,   ///< stack binop
            Mux,   ///< stack mux
            Bits,  ///< stack bit-extract
            Cat,   ///< stack cat
        } op;
        firrtl::UnOpKind un = firrtl::UnOpKind::Not;
        firrtl::BinOpKind bin = firrtl::BinOpKind::Add;
        unsigned width = 0;     ///< result width
        unsigned opw = 0;       ///< unary operand width
        unsigned hi = 0, lo = 0;
        unsigned lowWidth = 0;  ///< cat low-half width
        int32_t a = 0, b = 0, c = 0;
    };

    /** Per-node execution record, indexed like Simulator::nodes_. */
    struct CNode
    {
        enum Kind : uint8_t { Comb, MemRead, RegNext } kind;
        uint32_t start = 0, end = 0; ///< bytecode range
        int lhs = -1;                ///< destination signal
        int mem = -1;                ///< MemRead: memory index
        int regSlot = -1;            ///< RegNext: regNext_ slot
        unsigned width = 0;          ///< destination width
        uint32_t level = 0;          ///< levelized rank
    };

    int32_t constRef(uint64_t value);
    void compileNode(int n);
    void buildReaderTable();
    void buildLevels();
    void markNode(int n);
    void markReaders(int sig);
    uint64_t load(int32_t ref) const;
    uint64_t execInstr(const Instr &in) const;
    uint64_t execNode(const CNode &cn) const;

    Simulator &sim_;
    std::vector<Instr> code_;
    std::vector<CNode> cnodes_;
    std::vector<uint64_t> consts_;
    /** Signal → reading nodes, CSR layout. */
    std::vector<uint32_t> sigReadersOff_;
    std::vector<int32_t> sigReaders_;
    /** Signal → combinational producer node (CombAssign/MemRead),
     *  -1 when none (inputs, registers). */
    std::vector<int32_t> producer_;
    /** Memory index → its MemRead node. */
    std::vector<int32_t> memNode_;
    std::vector<uint8_t> dirty_;
    std::vector<std::vector<int32_t>> levelQueue_;
    mutable std::vector<uint64_t> stack_;
    uint64_t nodesEvaluated_ = 0;
    uint64_t nodesSkipped_ = 0;
};

} // namespace fireaxe::rtlsim

#endif // FIREAXE_RTLSIM_COMPILED_HH
