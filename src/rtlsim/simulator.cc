#include "rtlsim/simulator.hh"

#include <algorithm>
#include <deque>
#include <istream>
#include <ostream>

#include "base/bits.hh"
#include "base/logging.hh"
#include "rtlsim/compiled.hh"
#include "rtlsim/ops.hh"

namespace fireaxe::rtlsim {

using firrtl::BinOpKind;
using firrtl::Circuit;
using firrtl::ExprKind;
using firrtl::ExprPtr;
using firrtl::Module;
using firrtl::PortDir;
using firrtl::SignalKind;
using firrtl::UnOpKind;

Simulator::Simulator(
    const Circuit &flat_circuit, EvalEngine engine,
    std::shared_ptr<const CompiledProgram> precompiled)
    : engine_(engine)
{
    const Module &top = flat_circuit.top();
    if (!top.instances.empty()) {
        fatal("Simulator requires a fully flat module; '", top.name,
              "' still contains ", top.instances.size(),
              " instances (use passes::flattenAll)");
    }

    auto addSignal = [&](const std::string &name, unsigned width,
                         SigKind kind, uint64_t init = 0) -> int {
        int idx = int(signals_.size());
        signals_.push_back({name, width, kind, init});
        signalIdx_[name] = idx;
        return idx;
    };

    for (const auto &p : top.ports) {
        int idx = addSignal(p.name, p.width,
                            p.dir == PortDir::Input ? SigKind::Input
                                                    : SigKind::Output);
        if (p.dir == PortDir::Input)
            inputs_.push_back(idx);
        else
            outputs_.push_back(idx);
    }
    for (const auto &w : top.wires)
        addSignal(w.name, w.width, SigKind::Comb);
    for (const auto &r : top.regs) {
        int idx = addSignal(r.name, r.width, SigKind::Reg, r.init);
        regSigs_.push_back(idx);
        regNextSlot_[idx] = int(regNext_.size());
        regNext_.push_back(r.init);
        regHasNext_.push_back(false);
    }
    for (const auto &m : top.mems) {
        unsigned addr_w = bitsNeeded(m.depth > 0 ? m.depth - 1 : 0);
        MemInfo mi;
        mi.name = m.name;
        mi.depth = m.depth;
        mi.width = m.width;
        mi.raddr = addSignal(m.name + ".raddr", addr_w, SigKind::Comb);
        mi.rdata = addSignal(m.name + ".rdata", m.width, SigKind::Comb);
        mi.waddr = addSignal(m.name + ".waddr", addr_w, SigKind::Comb);
        mi.wdata = addSignal(m.name + ".wdata", m.width, SigKind::Comb);
        mi.wen = addSignal(m.name + ".wen", 1, SigKind::Comb);
        mems_.push_back(mi);
        memData_.emplace_back(m.depth, 0);

        // Memory read node: rdata = data[raddr].
        EvalNode node;
        node.kind = NodeKind::MemRead;
        node.lhs = mi.rdata;
        node.mem = int(mems_.size()) - 1;
        node.lhsWidth = m.width;
        node.readSigs = {mi.raddr};
        nodes_.push_back(std::move(node));
    }

    values_.assign(signals_.size(), 0);
    for (size_t i = 0; i < signals_.size(); ++i)
        values_[i] = signals_[i].init;

    // Compile connects.
    for (const auto &c : top.connects) {
        auto it = signalIdx_.find(c.lhs);
        if (it == signalIdx_.end())
            fatal("connect to unknown flat signal '", c.lhs, "'");
        int lhs = it->second;
        const Signal &ls = signals_[lhs];

        EvalNode node;
        node.kind = ls.kind == SigKind::Reg ? NodeKind::RegNext
                                            : NodeKind::CombAssign;
        node.lhs = lhs;
        node.lhsWidth = ls.width;
        compileExpr(c.rhs, node.expr);
        for (const auto &op : node.expr.ops)
            if (op.kind == POp::PushSig)
                node.readSigs.push_back(op.sig);
        if (node.kind == NodeKind::RegNext)
            regHasNext_[regNextSlot_.at(lhs)] = true;
        nodes_.push_back(std::move(node));
    }

    buildTopoOrder();
    buildDepMatrix();
    if (engine_ == EvalEngine::Compiled)
        compiled_ = std::make_unique<CompiledEngine>(
            *this, std::move(precompiled));
    evalComb();
}

Simulator::~Simulator() = default;

std::shared_ptr<const CompiledProgram>
Simulator::compiledProgram() const
{
    return compiled_ ? compiled_->program() : nullptr;
}

uint64_t
Simulator::nodesEvaluated() const
{
    return compiled_ ? compiled_->nodesEvaluated() : interpEvaluated_;
}

uint64_t
Simulator::nodesSkipped() const
{
    return compiled_ ? compiled_->nodesSkipped() : 0;
}

void
Simulator::compileExpr(const ExprPtr &expr, CompiledExpr &out)
{
    POp op;
    op.width = expr->width;
    switch (expr->kind) {
      case ExprKind::Ref: {
        auto it = signalIdx_.find(expr->name);
        if (it == signalIdx_.end())
            fatal("expression reads unknown flat signal '", expr->name,
                  "'");
        op.kind = POp::PushSig;
        op.sig = it->second;
        op.width = signals_[it->second].width;
        out.ops.push_back(op);
        return;
      }
      case ExprKind::Literal:
        op.kind = POp::PushLit;
        op.lit = expr->value;
        out.ops.push_back(op);
        return;
      case ExprKind::UnOp:
        compileExpr(expr->args[0], out);
        op.kind = POp::Un;
        op.un = expr->unOp;
        op.lo = expr->args[0]->width; // operand width, for Not mask
        out.ops.push_back(op);
        return;
      case ExprKind::BinOp:
        compileExpr(expr->args[0], out);
        compileExpr(expr->args[1], out);
        op.kind = POp::Bin;
        op.bin = expr->binOp;
        out.ops.push_back(op);
        return;
      case ExprKind::Mux:
        compileExpr(expr->args[0], out);
        compileExpr(expr->args[1], out);
        compileExpr(expr->args[2], out);
        op.kind = POp::Mux;
        out.ops.push_back(op);
        return;
      case ExprKind::Bits:
        compileExpr(expr->args[0], out);
        op.kind = POp::Bits;
        op.hi = expr->hi;
        op.lo = expr->lo;
        out.ops.push_back(op);
        return;
      case ExprKind::Cat:
        compileExpr(expr->args[0], out);
        compileExpr(expr->args[1], out);
        op.kind = POp::Cat;
        op.lowWidth = expr->args[1]->width;
        out.ops.push_back(op);
        return;
    }
    panic("unreachable expr kind");
}

uint64_t
Simulator::evalExpr(const CompiledExpr &expr) const
{
    auto &st = stack_;
    st.clear();
    for (const auto &op : expr.ops) {
        switch (op.kind) {
          case POp::PushLit:
            st.push_back(op.lit);
            break;
          case POp::PushSig:
            st.push_back(values_[op.sig]);
            break;
          case POp::Un: {
            uint64_t a = st.back();
            st.pop_back();
            st.push_back(evalUnOp(op.un, a, op.lo, op.width));
            break;
          }
          case POp::Bin: {
            uint64_t b = st.back();
            st.pop_back();
            uint64_t a = st.back();
            st.pop_back();
            st.push_back(evalBinOp(op.bin, a, b, op.width));
            break;
          }
          case POp::Mux: {
            uint64_t f = st.back();
            st.pop_back();
            uint64_t t = st.back();
            st.pop_back();
            uint64_t s = st.back();
            st.pop_back();
            st.push_back(truncate(s ? t : f, op.width));
            break;
          }
          case POp::Bits: {
            uint64_t a = st.back();
            st.pop_back();
            st.push_back(extractBits(a, op.hi, op.lo));
            break;
          }
          case POp::Cat: {
            uint64_t lo = st.back();
            st.pop_back();
            uint64_t hi = st.back();
            st.pop_back();
            st.push_back(truncate((hi << op.lowWidth) | lo, op.width));
            break;
          }
        }
    }
    FIREAXE_ASSERT(st.size() == 1, "postfix stack imbalance");
    return st.back();
}

void
Simulator::buildTopoOrder()
{
    // Producers: CombAssign and MemRead nodes produce their lhs
    // signal. Inputs and registers are available at comb-phase start.
    std::map<int, int> producer; // signal -> node index
    for (size_t n = 0; n < nodes_.size(); ++n) {
        if (nodes_[n].kind != NodeKind::RegNext) {
            auto [it, fresh] = producer.emplace(nodes_[n].lhs, int(n));
            if (!fresh) {
                fatal("flat signal '", signals_[nodes_[n].lhs].name,
                      "' has multiple drivers");
            }
        }
    }

    std::vector<std::vector<int>> consumers(nodes_.size());
    std::vector<int> indeg(nodes_.size(), 0);
    for (size_t n = 0; n < nodes_.size(); ++n) {
        for (int sig : nodes_[n].readSigs) {
            auto it = producer.find(sig);
            if (it != producer.end() && it->second != int(n)) {
                consumers[it->second].push_back(int(n));
                ++indeg[n];
            }
        }
    }

    std::deque<int> ready;
    for (size_t n = 0; n < nodes_.size(); ++n)
        if (indeg[n] == 0)
            ready.push_back(int(n));
    while (!ready.empty()) {
        int n = ready.front();
        ready.pop_front();
        evalOrder_.push_back(n);
        for (int c : consumers[n])
            if (--indeg[c] == 0)
                ready.push_back(c);
    }
    if (evalOrder_.size() != nodes_.size()) {
        for (size_t n = 0; n < nodes_.size(); ++n) {
            if (indeg[n] > 0) {
                fatal("combinational loop in flat design involving '",
                      signals_[nodes_[n].lhs].name, "'");
            }
        }
    }
}

void
Simulator::buildDepMatrix()
{
    // Signal-level forward adjacency through comb nodes.
    std::map<int, std::vector<int>> fwd;
    for (const auto &node : nodes_) {
        if (node.kind == NodeKind::RegNext)
            continue;
        for (int sig : node.readSigs)
            fwd[sig].push_back(node.lhs);
    }

    std::set<int> output_set(outputs_.begin(), outputs_.end());
    for (int out : outputs_)
        outputDeps_[out]; // ensure entries exist

    for (int in : inputs_) {
        std::set<int> seen{in};
        std::deque<int> work{in};
        while (!work.empty()) {
            int cur = work.front();
            work.pop_front();
            if (output_set.count(cur))
                outputDeps_[cur].insert(in);
            auto it = fwd.find(cur);
            if (it == fwd.end())
                continue;
            for (int next : it->second)
                if (seen.insert(next).second)
                    work.push_back(next);
        }
    }
}

int
Simulator::signalIndex(const std::string &name) const
{
    auto it = signalIdx_.find(name);
    return it == signalIdx_.end() ? -1 : it->second;
}

void
Simulator::poke(const std::string &name, uint64_t value)
{
    int idx = signalIndex(name);
    if (idx < 0)
        fatal("poke of unknown signal '", name, "'");
    pokeIdx(idx, value);
}

void
Simulator::pokeIdx(int idx, uint64_t value)
{
    uint64_t v = truncate(value, signals_[idx].width);
    if (compiled_ && values_[idx] != v) {
        values_[idx] = v;
        compiled_->onSignalWrite(idx);
        return;
    }
    values_[idx] = v;
}

uint64_t
Simulator::peek(const std::string &name) const
{
    int idx = signalIndex(name);
    if (idx < 0)
        fatal("peek of unknown signal '", name, "'");
    return values_[idx];
}

void
Simulator::evalComb()
{
    if (compiled_) {
        compiled_->evalComb();
        return;
    }
    interpEvaluated_ += evalOrder_.size();
    for (int n : evalOrder_) {
        const EvalNode &node = nodes_[n];
        switch (node.kind) {
          case NodeKind::CombAssign:
            values_[node.lhs] =
                truncate(evalExpr(node.expr), node.lhsWidth);
            break;
          case NodeKind::MemRead: {
            const MemInfo &mi = mems_[node.mem];
            uint64_t addr = values_[mi.raddr] % mi.depth;
            values_[node.lhs] = memData_[node.mem][addr];
            break;
          }
          case NodeKind::RegNext:
            regNext_[regNextSlot_.at(node.lhs)] =
                truncate(evalExpr(node.expr), node.lhsWidth);
            break;
        }
    }
}

void
Simulator::step()
{
    // Memory writes use the comb values computed by the last
    // evalComb() — synchronous write semantics.
    for (size_t m = 0; m < mems_.size(); ++m) {
        const MemInfo &mi = mems_[m];
        if (values_[mi.wen]) {
            uint64_t addr = values_[mi.waddr] % mi.depth;
            uint64_t word = truncate(values_[mi.wdata], mi.width);
            if (compiled_ && memData_[m][addr] != word)
                compiled_->onMemWrite(int(m));
            memData_[m][addr] = word;
        }
    }
    for (size_t i = 0; i < regSigs_.size(); ++i) {
        if (!regHasNext_[i])
            continue;
        if (compiled_) {
            if (values_[regSigs_[i]] != regNext_[i]) {
                values_[regSigs_[i]] = regNext_[i];
                compiled_->onSignalWrite(regSigs_[i]);
            }
        } else {
            values_[regSigs_[i]] = regNext_[i];
        }
    }
    ++cycle_;
    evalComb();
}

void
Simulator::run(uint64_t n)
{
    for (uint64_t i = 0; i < n; ++i)
        step();
}

void
Simulator::reset()
{
    for (size_t i = 0; i < signals_.size(); ++i)
        values_[i] = signals_[i].init;
    for (size_t i = 0; i < regSigs_.size(); ++i)
        regNext_[i] = signals_[regSigs_[i]].init;
    for (auto &mem : memData_)
        std::fill(mem.begin(), mem.end(), 0);
    cycle_ = 0;
    if (compiled_)
        compiled_->markAll();
    evalComb();
}

const std::set<int> &
Simulator::outputDeps(int output_idx) const
{
    auto it = outputDeps_.find(output_idx);
    if (it == outputDeps_.end())
        fatal("outputDeps: signal ", output_idx, " is not an output");
    return it->second;
}

void
Simulator::saveState(SeqState &out) const
{
    out.regValues.resize(regSigs_.size());
    for (size_t i = 0; i < regSigs_.size(); ++i)
        out.regValues[i] = values_[regSigs_[i]];
    out.memContents = memData_;
}

void
Simulator::loadState(const SeqState &in)
{
    FIREAXE_ASSERT(in.regValues.size() == regSigs_.size());
    for (size_t i = 0; i < regSigs_.size(); ++i) {
        if (compiled_) {
            if (values_[regSigs_[i]] != in.regValues[i]) {
                values_[regSigs_[i]] = in.regValues[i];
                compiled_->onSignalWrite(regSigs_[i]);
            }
        } else {
            values_[regSigs_[i]] = in.regValues[i];
        }
    }
    if (compiled_) {
        // Only invalidate memories whose contents actually differ —
        // FAME-5 swaps state every host cycle, and a wholesale
        // invalidation there would defeat the gating.
        FIREAXE_ASSERT(in.memContents.size() == memData_.size());
        for (size_t m = 0; m < memData_.size(); ++m)
            if (memData_[m] != in.memContents[m])
                compiled_->onMemWrite(int(m));
    }
    memData_ = in.memContents;
}

void
Simulator::saveCheckpoint(std::ostream &os) const
{
    os << "fireaxe-checkpoint 1\n";
    os << signals_.size() << " " << mems_.size() << " " << cycle_
       << "\n";
    for (size_t i = 0; i < signals_.size(); ++i)
        os << values_[i] << (i + 1 == signals_.size() ? "\n" : " ");
    for (size_t m = 0; m < mems_.size(); ++m) {
        os << mems_[m].name << " " << memData_[m].size() << "\n";
        for (size_t w = 0; w < memData_[m].size(); ++w) {
            os << memData_[m][w]
               << (w + 1 == memData_[m].size() ? "\n" : " ");
        }
    }
}

bool
Simulator::tryLoadCheckpoint(std::istream &is, std::string &error)
{
    auto fail = [&](std::string msg) {
        error = std::move(msg);
        return false;
    };
    std::string magic, version;
    is >> magic >> version;
    if (magic != "fireaxe-checkpoint" || version != "1")
        return fail("not a fireaxe checkpoint stream");
    size_t num_signals = 0, num_mems = 0;
    uint64_t cycle = 0;
    is >> num_signals >> num_mems >> cycle;
    if (!is)
        return fail("truncated checkpoint header");
    if (num_signals != signals_.size() || num_mems != mems_.size()) {
        return fail("checkpoint does not match this design: " +
                    std::to_string(num_signals) + " signals / " +
                    std::to_string(num_mems) + " memories vs " +
                    std::to_string(signals_.size()) + " / " +
                    std::to_string(mems_.size()));
    }

    // Read everything into temporaries first: nothing below touches
    // simulator state until the whole stream has validated, so a
    // failed load leaves the caller's state intact.
    std::vector<uint64_t> values(signals_.size());
    for (size_t i = 0; i < signals_.size(); ++i)
        is >> values[i];
    std::vector<std::vector<uint64_t>> mem_data(mems_.size());
    for (size_t m = 0; m < mems_.size(); ++m) {
        std::string name;
        size_t depth = 0;
        is >> name >> depth;
        if (!is)
            return fail("truncated checkpoint stream");
        if (name != mems_[m].name || depth != memData_[m].size()) {
            return fail("checkpoint memory mismatch: '" + name +
                        "'[" + std::to_string(depth) + "] vs '" +
                        mems_[m].name + "'[" +
                        std::to_string(memData_[m].size()) + "]");
        }
        mem_data[m].resize(depth);
        for (auto &word : mem_data[m])
            is >> word;
    }
    if (!is)
        return fail("truncated checkpoint stream");

    values_ = std::move(values);
    memData_ = std::move(mem_data);
    cycle_ = cycle;
    // Register next-value slots were computed from pre-checkpoint
    // state; refresh them (evalComb below recomputes from the
    // restored values).
    for (size_t i = 0; i < regSigs_.size(); ++i)
        regNext_[i] = values_[regSigs_[i]];
    if (compiled_)
        compiled_->markAll();
    evalComb();
    error.clear();
    return true;
}

void
Simulator::loadCheckpoint(std::istream &is)
{
    std::string error;
    if (!tryLoadCheckpoint(is, error))
        fatal(error);
}

void
Simulator::writeMem(const std::string &mem_name, uint64_t addr,
                    uint64_t data)
{
    for (size_t m = 0; m < mems_.size(); ++m) {
        if (mems_[m].name == mem_name) {
            FIREAXE_ASSERT(addr < mems_[m].depth);
            uint64_t word = truncate(data, mems_[m].width);
            if (compiled_ && memData_[m][addr] != word)
                compiled_->onMemWrite(int(m));
            memData_[m][addr] = word;
            return;
        }
    }
    fatal("writeMem: unknown memory '", mem_name, "'");
}

uint64_t
Simulator::readMem(const std::string &mem_name, uint64_t addr) const
{
    for (size_t m = 0; m < mems_.size(); ++m) {
        if (mems_[m].name == mem_name) {
            FIREAXE_ASSERT(addr < mems_[m].depth);
            return memData_[m][addr];
        }
    }
    fatal("readMem: unknown memory '", mem_name, "'");
}

} // namespace fireaxe::rtlsim
