/**
 * @file
 * VCD (value-change-dump) waveform writer for the RTL interpreter.
 * Lets users inspect monolithic or per-partition simulations in any
 * standard waveform viewer — the debugging loop FireSim users get
 * from its metasimulation mode.
 */

#ifndef FIREAXE_RTLSIM_VCD_HH
#define FIREAXE_RTLSIM_VCD_HH

#include <ostream>
#include <string>
#include <vector>

#include "rtlsim/simulator.hh"

namespace fireaxe::rtlsim {

/**
 * Streams value changes of every signal of a Simulator to an
 * ostream in VCD format. Usage:
 * @code
 *   VcdWriter vcd(file, sim, "top");
 *   for (...) { sim.step(); vcd.sample(); }
 * @endcode
 */
class VcdWriter
{
  public:
    /** Writes the header (var declarations + initial dump). The
     *  simulator must outlive the writer. */
    VcdWriter(std::ostream &os, Simulator &sim,
              const std::string &scope_name = "top");

    /** Emit changes since the last sample at the simulator's current
     *  cycle. Idempotent per cycle. */
    void sample();

  private:
    static std::string idFor(size_t index);
    void emitValue(size_t index);

    std::ostream &os_;
    Simulator &sim_;
    std::vector<uint64_t> last_;
    std::vector<std::string> ids_;
    uint64_t lastTime_ = 0;
    bool first_ = true;
};

} // namespace fireaxe::rtlsim

#endif // FIREAXE_RTLSIM_VCD_HH
