#include "rtlsim/compiled.hh"

#include <algorithm>
#include <map>

#include "base/logging.hh"
#include "rtlsim/ops.hh"
#include "rtlsim/simulator.hh"

namespace fireaxe::rtlsim {

size_t
CompiledProgram::byteSize() const
{
    return sizeof(CompiledProgram) +
           code.capacity() * sizeof(Instr) +
           cnodes.capacity() * sizeof(CNode) +
           consts.capacity() * sizeof(uint64_t) +
           sigReadersOff.capacity() * sizeof(uint32_t) +
           sigReaders.capacity() * sizeof(int32_t) +
           producer.capacity() * sizeof(int32_t) +
           memNode.capacity() * sizeof(int32_t);
}

using Instr = CompiledProgram::Instr;
using CNode = CompiledProgram::CNode;

namespace {

/** Evaluate a fused instruction over pool-only operands (constant
 *  folding at compile time — no live signal table exists yet). */
uint64_t
execConstInstr(const Instr &in, const std::vector<uint64_t> &consts)
{
    auto load = [&](int32_t ref) {
        FIREAXE_ASSERT(ref < 0, "const fold over a live signal");
        return consts[~ref];
    };
    switch (in.op) {
      case Instr::Push:
        return load(in.a);
      case Instr::UnF:
        return evalUnOp(in.un, load(in.a), in.opw, in.width);
      case Instr::BinF:
        return evalBinOp(in.bin, load(in.a), load(in.b), in.width);
      case Instr::MuxF:
        return truncate(load(in.a) ? load(in.b) : load(in.c),
                        in.width);
      case Instr::BitsF:
        return extractBits(load(in.a), in.hi, in.lo);
      case Instr::CatF:
        return truncate((load(in.a) << in.lowWidth) | load(in.b),
                        in.width);
      default:
        panic("execConstInstr on stack-form opcode");
    }
}

} // namespace

/** One-shot program builder; reads only the simulator's compiled
 *  node programs, never its live values. Defined at namespace scope
 *  (single TU) so Simulator can befriend it. */
struct ProgramBuilder
{
    const Simulator &sim;
    CompiledProgram prog;

    int32_t
    constRef(uint64_t value)
    {
        // The pool is small; linear dedup keeps construction simple.
        for (size_t i = 0; i < prog.consts.size(); ++i)
            if (prog.consts[i] == value)
                return ~int32_t(i);
        prog.consts.push_back(value);
        return ~int32_t(prog.consts.size() - 1);
    }

    void compileNode(int n);
    void buildReaderTable();
    void buildLevels();
    void build();
};

void
ProgramBuilder::compileNode(int n)
{
    const auto &ops = sim.nodes_[n].expr.ops;
    using POp = Simulator::POp;

    // Emit into a per-node scratch list with tail fusion: a consumer
    // op whose operands are the immediately preceding leaf pushes is
    // collapsed into one fused instruction.
    std::vector<Instr> out;
    out.reserve(ops.size());
    auto leaf = [&](size_t back) -> const Instr * {
        if (out.size() < back)
            return nullptr;
        const Instr &in = out[out.size() - back];
        return in.op == Instr::Push ? &in : nullptr;
    };
    auto fold = [&](Instr in) {
        // Constant-fold fused instructions over pool-only operands.
        bool all_const = in.a < 0 &&
                         (in.op == Instr::UnF || in.op == Instr::BitsF ||
                                  in.b < 0) &&
                         (in.op != Instr::MuxF || in.c < 0);
        if (all_const && in.op != Instr::Push) {
            Instr lit;
            lit.op = Instr::Push;
            lit.width = in.width;
            lit.a = constRef(execConstInstr(in, prog.consts));
            return lit;
        }
        return in;
    };

    for (const POp &op : ops) {
        Instr in;
        in.width = op.width;
        switch (op.kind) {
          case POp::PushLit:
            in.op = Instr::Push;
            in.a = constRef(op.lit);
            out.push_back(in);
            break;
          case POp::PushSig:
            in.op = Instr::Push;
            in.a = op.sig;
            out.push_back(in);
            break;
          case POp::Un:
            in.un = op.un;
            in.opw = op.lo; // operand width (interpreter convention)
            if (const Instr *a = leaf(1)) {
                in.op = Instr::UnF;
                in.a = a->a;
                out.pop_back();
                out.push_back(fold(in));
            } else {
                in.op = Instr::Un;
                out.push_back(in);
            }
            break;
          case POp::Bin: {
            in.bin = op.bin;
            const Instr *b = leaf(1);
            const Instr *a = b ? leaf(2) : nullptr;
            if (a && b) {
                in.op = Instr::BinF;
                in.a = a->a;
                in.b = b->a;
                out.pop_back();
                out.pop_back();
                out.push_back(fold(in));
            } else if (b && out.size() >= 2) {
                in.op = Instr::BinXR;
                in.b = b->a;
                out.pop_back();
                out.push_back(in);
            } else {
                in.op = Instr::Bin;
                out.push_back(in);
            }
            break;
          }
          case POp::Mux: {
            const Instr *f = leaf(1);
            const Instr *t = f ? leaf(2) : nullptr;
            const Instr *s = t ? leaf(3) : nullptr;
            if (s && t && f) {
                in.op = Instr::MuxF;
                in.a = s->a;
                in.b = t->a;
                in.c = f->a;
                out.pop_back();
                out.pop_back();
                out.pop_back();
                out.push_back(fold(in));
            } else {
                in.op = Instr::Mux;
                out.push_back(in);
            }
            break;
          }
          case POp::Bits:
            in.hi = op.hi;
            in.lo = op.lo;
            if (const Instr *a = leaf(1)) {
                in.op = Instr::BitsF;
                in.a = a->a;
                out.pop_back();
                out.push_back(fold(in));
            } else {
                in.op = Instr::Bits;
                out.push_back(in);
            }
            break;
          case POp::Cat: {
            in.lowWidth = op.lowWidth;
            const Instr *b = leaf(1);
            const Instr *a = b ? leaf(2) : nullptr;
            if (a && b) {
                in.op = Instr::CatF;
                in.a = a->a;
                in.b = b->a;
                out.pop_back();
                out.pop_back();
                out.push_back(fold(in));
            } else {
                in.op = Instr::Cat;
                out.push_back(in);
            }
            break;
          }
        }
    }

    prog.cnodes[n].start = uint32_t(prog.code.size());
    prog.code.insert(prog.code.end(), out.begin(), out.end());
    prog.cnodes[n].end = uint32_t(prog.code.size());
}

void
ProgramBuilder::buildReaderTable()
{
    // Deduplicate each node's read set, then lay the signal→reader
    // lists out in one CSR pair.
    std::vector<std::vector<int>> reads(prog.cnodes.size());
    std::vector<uint32_t> counts(sim.signals_.size() + 1, 0);
    for (size_t n = 0; n < prog.cnodes.size(); ++n) {
        reads[n] = sim.nodes_[n].readSigs;
        std::sort(reads[n].begin(), reads[n].end());
        reads[n].erase(std::unique(reads[n].begin(), reads[n].end()),
                       reads[n].end());
        for (int sig : reads[n])
            ++counts[sig];
    }
    prog.sigReadersOff.assign(sim.signals_.size() + 1, 0);
    for (size_t s = 0; s < sim.signals_.size(); ++s)
        prog.sigReadersOff[s + 1] = prog.sigReadersOff[s] + counts[s];
    prog.sigReaders.resize(prog.sigReadersOff.back());
    std::vector<uint32_t> fill(prog.sigReadersOff.begin(),
                               prog.sigReadersOff.end() - 1);
    for (size_t n = 0; n < prog.cnodes.size(); ++n)
        for (int sig : reads[n])
            prog.sigReaders[fill[sig]++] = int32_t(n);
}

void
ProgramBuilder::buildLevels()
{
    // Longest producer chain, walked in the existing topo order so
    // producers are ranked before their consumers. Readers always
    // land at a strictly higher level than any of their producers,
    // which is what lets evalComb() make a single ascending sweep.
    uint32_t max_level = 0;
    for (int n : sim.evalOrder_) {
        uint32_t lvl = 0;
        for (int sig : sim.nodes_[n].readSigs) {
            int32_t p = prog.producer[sig];
            if (p >= 0 && p != n)
                lvl = std::max(lvl, prog.cnodes[p].level + 1);
        }
        prog.cnodes[n].level = lvl;
        max_level = std::max(max_level, lvl);
    }
    prog.numLevels = max_level + 1;
}

void
ProgramBuilder::build()
{
    const size_t num_nodes = sim.nodes_.size();
    prog.cnodes.resize(num_nodes);
    prog.producer.assign(sim.signals_.size(), -1);
    prog.memNode.assign(sim.mems_.size(), -1);
    prog.numSignals = sim.signals_.size();
    prog.numMems = sim.mems_.size();
    prog.numNodes = num_nodes;

    for (size_t n = 0; n < num_nodes; ++n) {
        const auto &node = sim.nodes_[n];
        CNode &cn = prog.cnodes[n];
        cn.lhs = node.lhs;
        cn.width = node.lhsWidth;
        switch (node.kind) {
          case Simulator::NodeKind::CombAssign:
            cn.kind = CNode::Comb;
            prog.producer[node.lhs] = int32_t(n);
            compileNode(int(n));
            break;
          case Simulator::NodeKind::MemRead:
            cn.kind = CNode::MemRead;
            cn.mem = node.mem;
            prog.producer[node.lhs] = int32_t(n);
            prog.memNode[node.mem] = int32_t(n);
            break;
          case Simulator::NodeKind::RegNext:
            cn.kind = CNode::RegNext;
            cn.regSlot = sim.regNextSlot_.at(node.lhs);
            compileNode(int(n));
            break;
        }
    }

    buildReaderTable();
    buildLevels();
}

std::shared_ptr<const CompiledProgram>
compileProgram(const Simulator &sim)
{
    ProgramBuilder builder{sim, {}};
    builder.build();
    return std::make_shared<const CompiledProgram>(
        std::move(builder.prog));
}

CompiledEngine::CompiledEngine(
    Simulator &sim, std::shared_ptr<const CompiledProgram> program)
    : sim_(sim)
{
    if (program) {
        // Adopt a precompiled program only when its shape fingerprint
        // matches this simulator exactly; a cache serving a stale or
        // foreign artifact must degrade to a fresh compile, never to
        // wrong results.
        if (program->numSignals == sim_.signals_.size() &&
            program->numMems == sim_.mems_.size() &&
            program->numNodes == sim_.nodes_.size()) {
            prog_ = std::move(program);
        } else {
            warn("precompiled program shape mismatch (",
                 program->numNodes, " nodes for a ",
                 sim_.nodes_.size(),
                 "-node design); recompiling");
        }
    }
    if (!prog_)
        prog_ = compileProgram(sim_);

    dirty_.assign(prog_->cnodes.size(), 0);
    levelQueue_.assign(prog_->numLevels, {});
    markAll();
}

void
CompiledEngine::markNode(int n)
{
    if (!dirty_[n]) {
        dirty_[n] = 1;
        levelQueue_[prog_->cnodes[n].level].push_back(int32_t(n));
    }
}

void
CompiledEngine::markReaders(int sig)
{
    for (uint32_t i = prog_->sigReadersOff[sig];
         i < prog_->sigReadersOff[sig + 1]; ++i)
        markNode(prog_->sigReaders[i]);
}

void
CompiledEngine::onSignalWrite(int sig)
{
    markReaders(sig);
    // A driven signal whose value was overwritten from the outside
    // (poke) must be recomputed by its driver on the next evalComb,
    // exactly as the interpreter's full sweep would.
    if (prog_->producer[sig] >= 0)
        markNode(prog_->producer[sig]);
}

void
CompiledEngine::onMemWrite(int mem)
{
    if (prog_->memNode[mem] >= 0)
        markNode(prog_->memNode[mem]);
}

void
CompiledEngine::markAll()
{
    for (size_t n = 0; n < prog_->cnodes.size(); ++n)
        markNode(int(n));
}

uint64_t
CompiledEngine::load(int32_t ref) const
{
    return ref >= 0 ? sim_.values_[ref] : prog_->consts[~ref];
}

uint64_t
CompiledEngine::execInstr(const CompiledProgram::Instr &in) const
{
    switch (in.op) {
      case Instr::Push:
        return load(in.a);
      case Instr::UnF:
        return evalUnOp(in.un, load(in.a), in.opw, in.width);
      case Instr::BinF:
        return evalBinOp(in.bin, load(in.a), load(in.b), in.width);
      case Instr::MuxF:
        return truncate(load(in.a) ? load(in.b) : load(in.c),
                        in.width);
      case Instr::BitsF:
        return extractBits(load(in.a), in.hi, in.lo);
      case Instr::CatF:
        return truncate((load(in.a) << in.lowWidth) | load(in.b),
                        in.width);
      default:
        panic("execInstr on stack-form opcode");
    }
}

uint64_t
CompiledEngine::execNode(const CompiledProgram::CNode &cn) const
{
    // Fused single-instruction nodes (the common case after fusion)
    // bypass the stack entirely.
    if (cn.end - cn.start == 1)
        return execInstr(prog_->code[cn.start]);

    auto &st = stack_;
    st.clear();
    for (uint32_t i = cn.start; i < cn.end; ++i) {
        const Instr &in = prog_->code[i];
        switch (in.op) {
          case Instr::Push:
          case Instr::UnF:
          case Instr::BinF:
          case Instr::MuxF:
          case Instr::BitsF:
          case Instr::CatF:
            st.push_back(execInstr(in));
            break;
          case Instr::BinXR: {
            uint64_t a = st.back();
            st.pop_back();
            st.push_back(evalBinOp(in.bin, a, load(in.b), in.width));
            break;
          }
          case Instr::Un: {
            uint64_t a = st.back();
            st.pop_back();
            st.push_back(evalUnOp(in.un, a, in.opw, in.width));
            break;
          }
          case Instr::Bin: {
            uint64_t b = st.back();
            st.pop_back();
            uint64_t a = st.back();
            st.pop_back();
            st.push_back(evalBinOp(in.bin, a, b, in.width));
            break;
          }
          case Instr::Mux: {
            uint64_t f = st.back();
            st.pop_back();
            uint64_t t = st.back();
            st.pop_back();
            uint64_t s = st.back();
            st.pop_back();
            st.push_back(truncate(s ? t : f, in.width));
            break;
          }
          case Instr::Bits: {
            uint64_t a = st.back();
            st.pop_back();
            st.push_back(extractBits(a, in.hi, in.lo));
            break;
          }
          case Instr::Cat: {
            uint64_t lo = st.back();
            st.pop_back();
            uint64_t hi = st.back();
            st.pop_back();
            st.push_back(truncate((hi << in.lowWidth) | lo,
                                  in.width));
            break;
          }
        }
    }
    FIREAXE_ASSERT(st.size() == 1, "compiled stack imbalance");
    return st.back();
}

void
CompiledEngine::evalComb()
{
    uint64_t evaluated = 0;
    for (auto &queue : levelQueue_) {
        // Evaluating a node only marks strictly-higher levels, so an
        // index loop over the current queue is stable.
        for (size_t i = 0; i < queue.size(); ++i) {
            int n = queue[i];
            const CNode &cn = prog_->cnodes[n];
            dirty_[n] = 0;
            ++evaluated;
            switch (cn.kind) {
              case CNode::Comb: {
                uint64_t v = truncate(execNode(cn), cn.width);
                if (sim_.values_[cn.lhs] != v) {
                    sim_.values_[cn.lhs] = v;
                    markReaders(cn.lhs);
                }
                break;
              }
              case CNode::MemRead: {
                const auto &mi = sim_.mems_[cn.mem];
                uint64_t addr = sim_.values_[mi.raddr] % mi.depth;
                uint64_t v = sim_.memData_[cn.mem][addr];
                if (sim_.values_[cn.lhs] != v) {
                    sim_.values_[cn.lhs] = v;
                    markReaders(cn.lhs);
                }
                break;
              }
              case CNode::RegNext:
                sim_.regNext_[cn.regSlot] =
                    truncate(execNode(cn), cn.width);
                break;
            }
        }
        queue.clear();
    }
    nodesEvaluated_ += evaluated;
    nodesSkipped_ += prog_->cnodes.size() - evaluated;
}

} // namespace fireaxe::rtlsim
