#include "rtlsim/compiled.hh"

#include <algorithm>
#include <map>

#include "base/logging.hh"
#include "rtlsim/ops.hh"
#include "rtlsim/simulator.hh"

namespace fireaxe::rtlsim {

CompiledEngine::CompiledEngine(Simulator &sim) : sim_(sim)
{
    const size_t num_nodes = sim_.nodes_.size();
    cnodes_.resize(num_nodes);
    dirty_.assign(num_nodes, 0);
    producer_.assign(sim_.signals_.size(), -1);
    memNode_.assign(sim_.mems_.size(), -1);

    for (size_t n = 0; n < num_nodes; ++n) {
        const auto &node = sim_.nodes_[n];
        CNode &cn = cnodes_[n];
        cn.lhs = node.lhs;
        cn.width = node.lhsWidth;
        switch (node.kind) {
          case Simulator::NodeKind::CombAssign:
            cn.kind = CNode::Comb;
            producer_[node.lhs] = int32_t(n);
            compileNode(int(n));
            break;
          case Simulator::NodeKind::MemRead:
            cn.kind = CNode::MemRead;
            cn.mem = node.mem;
            producer_[node.lhs] = int32_t(n);
            memNode_[node.mem] = int32_t(n);
            break;
          case Simulator::NodeKind::RegNext:
            cn.kind = CNode::RegNext;
            cn.regSlot = sim_.regNextSlot_.at(node.lhs);
            compileNode(int(n));
            break;
        }
    }

    buildReaderTable();
    buildLevels();
    markAll();
}

int32_t
CompiledEngine::constRef(uint64_t value)
{
    // The pool is small; linear dedup keeps construction simple.
    for (size_t i = 0; i < consts_.size(); ++i)
        if (consts_[i] == value)
            return ~int32_t(i);
    consts_.push_back(value);
    return ~int32_t(consts_.size() - 1);
}

void
CompiledEngine::compileNode(int n)
{
    const auto &ops = sim_.nodes_[n].expr.ops;
    using POp = Simulator::POp;

    // Emit into a per-node scratch list with tail fusion: a consumer
    // op whose operands are the immediately preceding leaf pushes is
    // collapsed into one fused instruction.
    std::vector<Instr> out;
    out.reserve(ops.size());
    auto leaf = [&](size_t back) -> const Instr * {
        if (out.size() < back)
            return nullptr;
        const Instr &in = out[out.size() - back];
        return in.op == Instr::Push ? &in : nullptr;
    };
    auto fold = [&](Instr in) {
        // Constant-fold fused instructions over pool-only operands.
        bool all_const = in.a < 0 &&
                         (in.op == Instr::UnF || in.op == Instr::BitsF ||
                                  in.b < 0) &&
                         (in.op != Instr::MuxF || in.c < 0);
        if (all_const && in.op != Instr::Push) {
            Instr lit;
            lit.op = Instr::Push;
            lit.width = in.width;
            lit.a = constRef(execInstr(in));
            return lit;
        }
        return in;
    };

    for (const POp &op : ops) {
        Instr in;
        in.width = op.width;
        switch (op.kind) {
          case POp::PushLit:
            in.op = Instr::Push;
            in.a = constRef(op.lit);
            out.push_back(in);
            break;
          case POp::PushSig:
            in.op = Instr::Push;
            in.a = op.sig;
            out.push_back(in);
            break;
          case POp::Un:
            in.un = op.un;
            in.opw = op.lo; // operand width (interpreter convention)
            if (const Instr *a = leaf(1)) {
                in.op = Instr::UnF;
                in.a = a->a;
                out.pop_back();
                out.push_back(fold(in));
            } else {
                in.op = Instr::Un;
                out.push_back(in);
            }
            break;
          case POp::Bin: {
            in.bin = op.bin;
            const Instr *b = leaf(1);
            const Instr *a = b ? leaf(2) : nullptr;
            if (a && b) {
                in.op = Instr::BinF;
                in.a = a->a;
                in.b = b->a;
                out.pop_back();
                out.pop_back();
                out.push_back(fold(in));
            } else if (b && out.size() >= 2) {
                in.op = Instr::BinXR;
                in.b = b->a;
                out.pop_back();
                out.push_back(in);
            } else {
                in.op = Instr::Bin;
                out.push_back(in);
            }
            break;
          }
          case POp::Mux: {
            const Instr *f = leaf(1);
            const Instr *t = f ? leaf(2) : nullptr;
            const Instr *s = t ? leaf(3) : nullptr;
            if (s && t && f) {
                in.op = Instr::MuxF;
                in.a = s->a;
                in.b = t->a;
                in.c = f->a;
                out.pop_back();
                out.pop_back();
                out.pop_back();
                out.push_back(fold(in));
            } else {
                in.op = Instr::Mux;
                out.push_back(in);
            }
            break;
          }
          case POp::Bits:
            in.hi = op.hi;
            in.lo = op.lo;
            if (const Instr *a = leaf(1)) {
                in.op = Instr::BitsF;
                in.a = a->a;
                out.pop_back();
                out.push_back(fold(in));
            } else {
                in.op = Instr::Bits;
                out.push_back(in);
            }
            break;
          case POp::Cat: {
            in.lowWidth = op.lowWidth;
            const Instr *b = leaf(1);
            const Instr *a = b ? leaf(2) : nullptr;
            if (a && b) {
                in.op = Instr::CatF;
                in.a = a->a;
                in.b = b->a;
                out.pop_back();
                out.pop_back();
                out.push_back(fold(in));
            } else {
                in.op = Instr::Cat;
                out.push_back(in);
            }
            break;
          }
        }
    }

    cnodes_[n].start = uint32_t(code_.size());
    code_.insert(code_.end(), out.begin(), out.end());
    cnodes_[n].end = uint32_t(code_.size());
}

void
CompiledEngine::buildReaderTable()
{
    // Deduplicate each node's read set, then lay the signal→reader
    // lists out in one CSR pair.
    std::vector<std::vector<int>> reads(cnodes_.size());
    std::vector<uint32_t> counts(sim_.signals_.size() + 1, 0);
    for (size_t n = 0; n < cnodes_.size(); ++n) {
        reads[n] = sim_.nodes_[n].readSigs;
        std::sort(reads[n].begin(), reads[n].end());
        reads[n].erase(std::unique(reads[n].begin(), reads[n].end()),
                       reads[n].end());
        for (int sig : reads[n])
            ++counts[sig];
    }
    sigReadersOff_.assign(sim_.signals_.size() + 1, 0);
    for (size_t s = 0; s < sim_.signals_.size(); ++s)
        sigReadersOff_[s + 1] = sigReadersOff_[s] + counts[s];
    sigReaders_.resize(sigReadersOff_.back());
    std::vector<uint32_t> fill(sigReadersOff_.begin(),
                               sigReadersOff_.end() - 1);
    for (size_t n = 0; n < cnodes_.size(); ++n)
        for (int sig : reads[n])
            sigReaders_[fill[sig]++] = int32_t(n);
}

void
CompiledEngine::buildLevels()
{
    // Longest producer chain, walked in the existing topo order so
    // producers are ranked before their consumers. Readers always
    // land at a strictly higher level than any of their producers,
    // which is what lets evalComb() make a single ascending sweep.
    uint32_t max_level = 0;
    for (int n : sim_.evalOrder_) {
        uint32_t lvl = 0;
        for (int sig : sim_.nodes_[n].readSigs) {
            int32_t p = producer_[sig];
            if (p >= 0 && p != n)
                lvl = std::max(lvl, cnodes_[p].level + 1);
        }
        cnodes_[n].level = lvl;
        max_level = std::max(max_level, lvl);
    }
    levelQueue_.assign(max_level + 1, {});
}

void
CompiledEngine::markNode(int n)
{
    if (!dirty_[n]) {
        dirty_[n] = 1;
        levelQueue_[cnodes_[n].level].push_back(int32_t(n));
    }
}

void
CompiledEngine::markReaders(int sig)
{
    for (uint32_t i = sigReadersOff_[sig];
         i < sigReadersOff_[sig + 1]; ++i)
        markNode(sigReaders_[i]);
}

void
CompiledEngine::onSignalWrite(int sig)
{
    markReaders(sig);
    // A driven signal whose value was overwritten from the outside
    // (poke) must be recomputed by its driver on the next evalComb,
    // exactly as the interpreter's full sweep would.
    if (producer_[sig] >= 0)
        markNode(producer_[sig]);
}

void
CompiledEngine::onMemWrite(int mem)
{
    if (memNode_[mem] >= 0)
        markNode(memNode_[mem]);
}

void
CompiledEngine::markAll()
{
    for (size_t n = 0; n < cnodes_.size(); ++n)
        markNode(int(n));
}

uint64_t
CompiledEngine::load(int32_t ref) const
{
    return ref >= 0 ? sim_.values_[ref] : consts_[~ref];
}

uint64_t
CompiledEngine::execInstr(const Instr &in) const
{
    switch (in.op) {
      case Instr::Push:
        return load(in.a);
      case Instr::UnF:
        return evalUnOp(in.un, load(in.a), in.opw, in.width);
      case Instr::BinF:
        return evalBinOp(in.bin, load(in.a), load(in.b), in.width);
      case Instr::MuxF:
        return truncate(load(in.a) ? load(in.b) : load(in.c),
                        in.width);
      case Instr::BitsF:
        return extractBits(load(in.a), in.hi, in.lo);
      case Instr::CatF:
        return truncate((load(in.a) << in.lowWidth) | load(in.b),
                        in.width);
      default:
        panic("execInstr on stack-form opcode");
    }
}

uint64_t
CompiledEngine::execNode(const CNode &cn) const
{
    // Fused single-instruction nodes (the common case after fusion)
    // bypass the stack entirely.
    if (cn.end - cn.start == 1)
        return execInstr(code_[cn.start]);

    auto &st = stack_;
    st.clear();
    for (uint32_t i = cn.start; i < cn.end; ++i) {
        const Instr &in = code_[i];
        switch (in.op) {
          case Instr::Push:
          case Instr::UnF:
          case Instr::BinF:
          case Instr::MuxF:
          case Instr::BitsF:
          case Instr::CatF:
            st.push_back(execInstr(in));
            break;
          case Instr::BinXR: {
            uint64_t a = st.back();
            st.pop_back();
            st.push_back(evalBinOp(in.bin, a, load(in.b), in.width));
            break;
          }
          case Instr::Un: {
            uint64_t a = st.back();
            st.pop_back();
            st.push_back(evalUnOp(in.un, a, in.opw, in.width));
            break;
          }
          case Instr::Bin: {
            uint64_t b = st.back();
            st.pop_back();
            uint64_t a = st.back();
            st.pop_back();
            st.push_back(evalBinOp(in.bin, a, b, in.width));
            break;
          }
          case Instr::Mux: {
            uint64_t f = st.back();
            st.pop_back();
            uint64_t t = st.back();
            st.pop_back();
            uint64_t s = st.back();
            st.pop_back();
            st.push_back(truncate(s ? t : f, in.width));
            break;
          }
          case Instr::Bits: {
            uint64_t a = st.back();
            st.pop_back();
            st.push_back(extractBits(a, in.hi, in.lo));
            break;
          }
          case Instr::Cat: {
            uint64_t lo = st.back();
            st.pop_back();
            uint64_t hi = st.back();
            st.pop_back();
            st.push_back(truncate((hi << in.lowWidth) | lo,
                                  in.width));
            break;
          }
        }
    }
    FIREAXE_ASSERT(st.size() == 1, "compiled stack imbalance");
    return st.back();
}

void
CompiledEngine::evalComb()
{
    uint64_t evaluated = 0;
    for (auto &queue : levelQueue_) {
        // Evaluating a node only marks strictly-higher levels, so an
        // index loop over the current queue is stable.
        for (size_t i = 0; i < queue.size(); ++i) {
            int n = queue[i];
            const CNode &cn = cnodes_[n];
            dirty_[n] = 0;
            ++evaluated;
            switch (cn.kind) {
              case CNode::Comb: {
                uint64_t v = truncate(execNode(cn), cn.width);
                if (sim_.values_[cn.lhs] != v) {
                    sim_.values_[cn.lhs] = v;
                    markReaders(cn.lhs);
                }
                break;
              }
              case CNode::MemRead: {
                const auto &mi = sim_.mems_[cn.mem];
                uint64_t addr = sim_.values_[mi.raddr] % mi.depth;
                uint64_t v = sim_.memData_[cn.mem][addr];
                if (sim_.values_[cn.lhs] != v) {
                    sim_.values_[cn.lhs] = v;
                    markReaders(cn.lhs);
                }
                break;
              }
              case CNode::RegNext:
                sim_.regNext_[cn.regSlot] =
                    truncate(execNode(cn), cn.width);
                break;
            }
        }
        queue.clear();
    }
    nodesEvaluated_ += evaluated;
    nodesSkipped_ += cnodes_.size() - evaluated;
}

} // namespace fireaxe::rtlsim
