#include "rtlsim/vcd.hh"

#include <bitset>

namespace fireaxe::rtlsim {

namespace {

/** Sanitize a hierarchical flat name for VCD identifiers. */
std::string
vcdName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name)
        out.push_back((c == '/' || c == '.') ? '_' : c);
    return out;
}

/** Binary rendering without leading zeros (VCD convention). */
std::string
binary(uint64_t value, unsigned width)
{
    if (value == 0)
        return "0";
    std::string out;
    bool started = false;
    for (int b = int(width) - 1; b >= 0; --b) {
        bool bit = (value >> b) & 1;
        if (bit)
            started = true;
        if (started)
            out.push_back(bit ? '1' : '0');
    }
    return out;
}

} // namespace

std::string
VcdWriter::idFor(size_t index)
{
    // Printable-ASCII base-94 identifiers, as the VCD spec allows.
    std::string id;
    size_t n = index;
    do {
        id.push_back(char('!' + n % 94));
        n /= 94;
    } while (n > 0);
    return id;
}

VcdWriter::VcdWriter(std::ostream &os, Simulator &sim,
                     const std::string &scope_name)
    : os_(os), sim_(sim)
{
    os_ << "$timescale 1ns $end\n";
    os_ << "$scope module " << scope_name << " $end\n";
    ids_.reserve(sim_.numSignals());
    last_.assign(sim_.numSignals(), 0);
    for (size_t i = 0; i < sim_.numSignals(); ++i) {
        const Signal &sig = sim_.signal(int(i));
        ids_.push_back(idFor(i));
        os_ << "$var wire " << sig.width << " " << ids_[i] << " "
            << vcdName(sig.name) << " $end\n";
    }
    os_ << "$upscope $end\n$enddefinitions $end\n";
}

void
VcdWriter::emitValue(size_t index)
{
    const Signal &sig = sim_.signal(int(index));
    uint64_t value = sim_.peekIdx(int(index));
    if (sig.width == 1)
        os_ << (value ? '1' : '0') << ids_[index] << "\n";
    else
        os_ << "b" << binary(value, sig.width) << " " << ids_[index]
            << "\n";
    last_[index] = value;
}

void
VcdWriter::sample()
{
    uint64_t now = sim_.cycle();
    if (!first_ && now == lastTime_)
        return;

    os_ << "#" << now << "\n";
    if (first_) {
        os_ << "$dumpvars\n";
        for (size_t i = 0; i < sim_.numSignals(); ++i)
            emitValue(i);
        os_ << "$end\n";
        first_ = false;
    } else {
        for (size_t i = 0; i < sim_.numSignals(); ++i)
            if (sim_.peekIdx(int(i)) != last_[i])
                emitValue(i);
    }
    lastTime_ = now;
}

} // namespace fireaxe::rtlsim
