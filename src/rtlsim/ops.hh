/**
 * @file
 * The single definition of operator semantics shared by both
 * evaluation engines (the postfix interpreter and the compiled
 * bytecode engine). Keeping these in one place is what makes the
 * engines bit-exact by construction: a semantics fix lands in both
 * at once, and the differential fuzz suite only has to catch
 * compilation bugs, not divergent arithmetic.
 */

#ifndef FIREAXE_RTLSIM_OPS_HH
#define FIREAXE_RTLSIM_OPS_HH

#include <cstdint>

#include "base/bits.hh"
#include "firrtl/ir.hh"

namespace fireaxe::rtlsim {

/**
 * Apply a unary operator. @p operand_width is the width of the
 * operand (needed for the Not mask and AndR comparison);
 * @p result_width is the width of the expression node.
 */
inline uint64_t
evalUnOp(firrtl::UnOpKind op, uint64_t a, unsigned operand_width,
         unsigned result_width)
{
    uint64_t r = 0;
    switch (op) {
      case firrtl::UnOpKind::Not:
        r = truncate(~a, operand_width);
        break;
      case firrtl::UnOpKind::AndR:
        r = (a == bitMask(operand_width)) ? 1 : 0;
        break;
      case firrtl::UnOpKind::OrR:
        r = a != 0;
        break;
      case firrtl::UnOpKind::XorR:
        r = __builtin_parityll(a);
        break;
    }
    return truncate(r, result_width);
}

/** Apply a binary operator, truncating to @p result_width. */
inline uint64_t
evalBinOp(firrtl::BinOpKind op, uint64_t a, uint64_t b,
          unsigned result_width)
{
    using firrtl::BinOpKind;
    uint64_t r = 0;
    switch (op) {
      case BinOpKind::Add: r = a + b; break;
      case BinOpKind::Sub: r = a - b; break;
      case BinOpKind::Mul: r = a * b; break;
      case BinOpKind::Div: r = b ? a / b : 0; break;
      case BinOpKind::Rem: r = b ? a % b : 0; break;
      case BinOpKind::And: r = a & b; break;
      case BinOpKind::Or:  r = a | b; break;
      case BinOpKind::Xor: r = a ^ b; break;
      case BinOpKind::Eq:  r = a == b; break;
      case BinOpKind::Neq: r = a != b; break;
      case BinOpKind::Lt:  r = a < b; break;
      case BinOpKind::Leq: r = a <= b; break;
      case BinOpKind::Gt:  r = a > b; break;
      case BinOpKind::Geq: r = a >= b; break;
      case BinOpKind::Shl:
        r = b >= 64 ? 0 : a << b;
        break;
      case BinOpKind::Shr:
        r = b >= 64 ? 0 : a >> b;
        break;
    }
    return truncate(r, result_width);
}

} // namespace fireaxe::rtlsim

#endif // FIREAXE_RTLSIM_OPS_HH
