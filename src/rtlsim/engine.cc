#include "rtlsim/engine.hh"

#include <cstdlib>

#include "base/logging.hh"

namespace fireaxe::rtlsim {

const char *
toString(EvalEngine engine)
{
    switch (engine) {
      case EvalEngine::Interpret:
        return "interpret";
      case EvalEngine::Compiled:
        return "compiled";
    }
    return "?";
}

EvalEngine
parseEvalEngine(const std::string &name)
{
    if (name == "interpret" || name == "interpreter")
        return EvalEngine::Interpret;
    if (name == "compiled" || name == "compile")
        return EvalEngine::Compiled;
    fatal("unknown eval engine '", name,
          "' (expected 'interpret' or 'compiled')");
}

EvalEngine
defaultEvalEngine()
{
    const char *env = std::getenv("FIREAXE_EVAL");
    if (env && *env)
        return parseEvalEngine(env);
    return EvalEngine::Interpret;
}

} // namespace fireaxe::rtlsim
