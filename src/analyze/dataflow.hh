/**
 * @file
 * The dataflow substrate of src/analyze: a signal-level graph over
 * one *flattened* module (passes::flattenAll output) plus the
 * worklist solvers every lattice pass shares.
 *
 * Two graphs are maintained over the same node space (every named
 * signal of the flat module, including memory sub-signals like
 * "m.rdata"):
 *
 *  - the *combinational* graph has an edge a -> b when b's driver
 *    reads a in the same target cycle (connect to a comb sink, or a
 *    memory's raddr -> rdata read path);
 *  - the *full* graph additionally has the sequential edges a -> b
 *    where a influences b across a clock edge (register next-value
 *    connects, and memory write-port signals -> rdata through the
 *    array state).
 *
 * Passes walk these graphs with the generic forward/backward worklist
 * solvers: a pass supplies a monotone update function per signal and
 * the solver re-queues dependents until a fixpoint. Fan-in/fan-out
 * cones and per-signal combinational depth (longest comb path from
 * any sequential/constant/input source) are provided directly since
 * every client needs them.
 */

#ifndef FIREAXE_ANALYZE_DATAFLOW_HH
#define FIREAXE_ANALYZE_DATAFLOW_HH

#include <functional>
#include <map>
#include <set>
#include <string>

#include "base/graph.hh"
#include "firrtl/ir.hh"

namespace fireaxe::analyze {

class DataflowGraph
{
  public:
    /** Build from a flattened circuit (single module of interest =
     *  its top; typically passes::flattenAll output). The circuit is
     *  copied so the graph owns its lifetime. */
    explicit DataflowGraph(firrtl::Circuit flat);

    const firrtl::Circuit &circuit() const { return flat_; }
    const firrtl::Module &module() const { return flat_.top(); }

    /** Same-cycle dependence edges only. */
    const base::StringDigraph &combGraph() const { return comb_; }
    /** Comb plus across-clock-edge dependence. */
    const base::StringDigraph &fullGraph() const { return full_; }

    /** The connect expression driving @p sig; nullptr if undriven. */
    const firrtl::ExprPtr *driverOf(const std::string &sig) const;

    /** Kind/width of a signal (SignalKind::Unknown if unresolvable). */
    firrtl::SignalInfo info(const std::string &sig) const;

    /** Every signal that can influence @p sig, across any number of
     *  clock edges (@p sig included). */
    std::set<std::string> fanInCone(const std::string &sig) const;

    /** Every signal @p sig can influence, across any number of clock
     *  edges (@p sig included). */
    std::set<std::string> fanOutCone(const std::string &sig) const;

    /**
     * Longest combinational path, in edges, from any comb source
     * (input port, register output, literal-only driver, rdata fed by
     * state) to each signal. 0 for sources themselves. Signals on a
     * combinational cycle get the depth of their component entry
     * (cycles are the verifier's IR004 problem, not ours); see
     * hasCombCycle().
     */
    const std::map<std::string, unsigned> &combDepths() const;

    /** Depth of one signal (0 when unknown). */
    unsigned combDepthOf(const std::string &sig) const;

    bool hasCombCycle() const;

    /**
     * Forward worklist solver: calls update(sig) for every signal
     * once, then whenever update returns true (the signal's abstract
     * value changed) re-queues every full-graph successor, until a
     * fixpoint. Monotone updates over a finite lattice terminate.
     */
    void solveForward(
        const std::function<bool(const std::string &)> &update) const;

    /** Backward solver: change propagates to predecessors instead. */
    void solveBackward(
        const std::function<bool(const std::string &)> &update) const;

  private:
    void build();
    void solve(const base::StringDigraph &prop,
               const std::function<bool(const std::string &)> &update)
        const;

    firrtl::Circuit flat_;
    base::StringDigraph comb_;
    base::StringDigraph full_;
    std::map<std::string, firrtl::ExprPtr> drivers_;
    mutable std::map<std::string, unsigned> depths_; // lazy
    mutable bool depthsComputed_ = false;
    mutable bool combCycle_ = false;
};

} // namespace fireaxe::analyze

#endif // FIREAXE_ANALYZE_DATAFLOW_HH
