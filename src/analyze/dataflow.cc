#include "analyze/dataflow.hh"

#include <algorithm>
#include <deque>

#include "base/logging.hh"

namespace fireaxe::analyze {

using firrtl::Circuit;
using firrtl::Module;
using firrtl::SignalInfo;
using firrtl::SignalKind;

DataflowGraph::DataflowGraph(Circuit flat) : flat_(std::move(flat))
{
    build();
}

void
DataflowGraph::build()
{
    const Module &mod = flat_.top();

    // Materialize every named signal in both graphs, even ones with
    // no edges (e.g. an output driven by a bare literal): the solvers
    // visit graph nodes, so a signal missing here is a signal no pass
    // would ever evaluate.
    auto ensure = [&](const std::string &n) {
        comb_.ensureNode(n);
        full_.ensureNode(n);
    };
    for (const auto &p : mod.ports)
        ensure(p.name);
    for (const auto &w : mod.wires)
        ensure(w.name);
    for (const auto &r : mod.regs)
        ensure(r.name);
    for (const auto &m : mod.mems)
        for (const char *s :
             {".raddr", ".rdata", ".waddr", ".wdata", ".wen"})
            ensure(m.name + s);

    for (const auto &c : mod.connects) {
        ensure(c.lhs);
        drivers_[c.lhs] = c.rhs;
        SignalKind lhs_kind = flat_.top().resolve(flat_, c.lhs).kind;
        bool sequential_sink =
            lhs_kind == SignalKind::Reg ||
            lhs_kind == SignalKind::MemWAddr ||
            lhs_kind == SignalKind::MemWData ||
            lhs_kind == SignalKind::MemWEn;
        std::vector<std::string> refs;
        collectRefs(c.rhs, refs);
        for (const auto &r : refs) {
            full_.addEdge(r, c.lhs);
            if (!sequential_sink)
                comb_.addEdge(r, c.lhs);
        }
    }

    for (const auto &m : mod.mems) {
        // Combinational read path.
        comb_.addEdge(m.name + ".raddr", m.name + ".rdata");
        full_.addEdge(m.name + ".raddr", m.name + ".rdata");
        // Write port influences future reads through the array state.
        for (const char *w : {".waddr", ".wdata", ".wen"})
            full_.addEdge(m.name + w, m.name + ".rdata");
    }
}

const firrtl::ExprPtr *
DataflowGraph::driverOf(const std::string &sig) const
{
    auto it = drivers_.find(sig);
    return it != drivers_.end() ? &it->second : nullptr;
}

SignalInfo
DataflowGraph::info(const std::string &sig) const
{
    return flat_.top().resolve(flat_, sig);
}

std::set<std::string>
DataflowGraph::fanInCone(const std::string &sig) const
{
    // One-shot reverse BFS; cheaper than materializing reversed().
    std::map<std::string, std::set<std::string>> rev;
    for (const auto &[from, succs] : full_.adjacency())
        for (const auto &to : succs)
            rev[to].insert(from);
    std::set<std::string> seen{sig};
    std::deque<std::string> work{sig};
    while (!work.empty()) {
        std::string cur = std::move(work.front());
        work.pop_front();
        auto it = rev.find(cur);
        if (it == rev.end())
            continue;
        for (const auto &src : it->second)
            if (seen.insert(src).second)
                work.push_back(src);
    }
    return seen;
}

std::set<std::string>
DataflowGraph::fanOutCone(const std::string &sig) const
{
    return full_.reachableFrom(sig);
}

const std::map<std::string, unsigned> &
DataflowGraph::combDepths() const
{
    if (depthsComputed_)
        return depths_;
    depthsComputed_ = true;

    // Tarjan completion order lists every component after all
    // components reachable from it; reversed, predecessors come
    // first, which is the order a longest-path DP needs.
    auto comps = comb_.stronglyConnectedComponents();
    std::reverse(comps.begin(), comps.end());

    std::map<std::string, std::set<std::string>> rev;
    for (const auto &[from, succs] : comb_.adjacency())
        for (const auto &to : succs)
            rev[to].insert(from);

    for (const auto &comp : comps) {
        if (comp.size() > 1 ||
            (comp.size() == 1 && comb_.hasEdge(comp[0], comp[0])))
            combCycle_ = true;
        for (const auto &sig : comp) {
            unsigned depth = 0;
            auto it = rev.find(sig);
            if (it != rev.end()) {
                for (const auto &src : it->second) {
                    auto dit = depths_.find(src);
                    if (dit != depths_.end())
                        depth = std::max(depth, dit->second + 1);
                }
            }
            depths_[sig] = depth;
        }
    }
    return depths_;
}

unsigned
DataflowGraph::combDepthOf(const std::string &sig) const
{
    const auto &d = combDepths();
    auto it = d.find(sig);
    return it != d.end() ? it->second : 0;
}

bool
DataflowGraph::hasCombCycle() const
{
    combDepths();
    return combCycle_;
}

void
DataflowGraph::solve(
    const base::StringDigraph &prop,
    const std::function<bool(const std::string &)> &update) const
{
    std::deque<std::string> work;
    std::set<std::string> queued;
    for (const auto &[sig, _] : prop.adjacency()) {
        work.push_back(sig);
        queued.insert(sig);
    }
    // Safety valve: a non-monotone update function could ping-pong
    // forever; |V|^2 * height bounds any sane lattice pass and turns
    // a latent bug into a loud failure instead of a hang.
    size_t budget = (queued.size() + 1) * (queued.size() + 1) * 8;
    while (!work.empty()) {
        FIREAXE_ASSERT(budget-- > 0,
                       "dataflow solver failed to converge "
                       "(non-monotone update function?)");
        std::string sig = std::move(work.front());
        work.pop_front();
        queued.erase(sig);
        if (!update(sig))
            continue;
        for (const auto &next : prop.successors(sig)) {
            if (queued.insert(next).second)
                work.push_back(next);
        }
    }
}

void
DataflowGraph::solveForward(
    const std::function<bool(const std::string &)> &update) const
{
    solve(full_, update);
}

void
DataflowGraph::solveBackward(
    const std::function<bool(const std::string &)> &update) const
{
    solve(full_.reversed(), update);
}

} // namespace fireaxe::analyze
