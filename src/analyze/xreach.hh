/**
 * @file
 * X / uninitialized-state reachability (on the src/analyze dataflow
 * framework).
 *
 * Registers without a reset network (Reg::hasReset == false) power up
 * at an unknown value on real hardware even though the simulators
 * deterministically start them at their declared init. This pass
 * computes where those unknown bits can *flow*: forward taint over
 * the full dependence graph (combinational edges, register
 * next-value edges, and memory writes through the array state to
 * rdata). A signal that constant propagation proved constant is
 * immune — the unknown input provably cannot change its value.
 *
 * The dangerous case for a partitioned simulation is an X that
 * escapes through a partition-boundary output port: the two sides of
 * the boundary may then disagree with a monolithic simulation of the
 * same design (FPGA power-up state vs software zero-init). The
 * verifier surfaces those escapes as IR010 warnings.
 */

#ifndef FIREAXE_ANALYZE_XREACH_HH
#define FIREAXE_ANALYZE_XREACH_HH

#include <map>
#include <set>
#include <string>

#include "analyze/constprop.hh"
#include "analyze/dataflow.hh"

namespace fireaxe::analyze {

/** Result of an X-reachability run. */
struct XReachResult
{
    /** Registers that source X (hasReset == false). */
    std::set<std::string> sources;
    /** Every signal an X can reach (sources included). */
    std::set<std::string> tainted;
    /** For each tainted signal, one witness source register. */
    std::map<std::string, std::string> witness;

    bool
    isTainted(const std::string &sig) const
    {
        return tainted.count(sig) != 0;
    }
};

/** Run the taint analysis. @p consts must come from the same graph. */
XReachResult reachUninitialized(const DataflowGraph &graph,
                                const ConstPropResult &consts);

} // namespace fireaxe::analyze

#endif // FIREAXE_ANALYZE_XREACH_HH
