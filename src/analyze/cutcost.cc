#include "analyze/cutcost.hh"

#include <algorithm>
#include <chrono>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

#include "analyze/dataflow.hh"
#include "base/graph.hh"
#include "base/logging.hh"
#include "obs/json.hh"
#include "passes/flatten.hh"

namespace fireaxe::analyze {

using ripper::ChannelPlan;
using ripper::PartitionMode;
using ripper::PartitionPlan;

std::vector<std::vector<std::string>>
channelDependencies(const PartitionPlan &plan,
                    const std::vector<passes::PortDeps> &summaries)
{
    // (partition, input port) -> delivering channel index.
    std::map<std::pair<int, std::string>, int> in_port_channel;
    for (size_t c = 0; c < plan.channels.size(); ++c)
        for (int n : plan.channels[c].netIndices)
            in_port_channel[{plan.channels[c].dstPart,
                             plan.nets[n].dstPort}] = int(c);

    std::vector<std::vector<std::string>> out(plan.channels.size());
    for (size_t c = 0; c < plan.channels.size(); ++c) {
        const ChannelPlan &ch = plan.channels[c];
        if (size_t(ch.srcPart) >= summaries.size())
            continue;
        std::set<std::string> deps;
        for (int n : ch.netIndices) {
            const auto &port_deps = summaries[ch.srcPart].deps;
            auto it = port_deps.find(plan.nets[n].srcPort);
            if (it == port_deps.end())
                continue;
            for (const auto &in : it->second) {
                auto cit = in_port_channel.find({ch.srcPart, in});
                if (cit != in_port_channel.end())
                    deps.insert(plan.channels[cit->second].name);
            }
        }
        out[c].assign(deps.begin(), deps.end());
    }
    return out;
}

namespace {

std::string
partLabel(const PartitionPlan &plan, size_t p)
{
    if (p < plan.partitionNames.size() &&
        !plan.partitionNames[p].empty())
        return plan.partitionNames[p];
    return "p" + std::to_string(p);
}

} // namespace

CutCostReport
analyzeCutCost(const PartitionPlan &plan,
               const std::vector<passes::PortDeps> &summaries,
               const CutCostOptions &options)
{
    auto t0 = std::chrono::steady_clock::now();

    CutCostReport report;
    report.mode =
        plan.mode == PartitionMode::Exact ? "exact" : "fast";
    report.linkName = options.link.name;
    report.hostClockMhz = options.hostClockMhz;
    report.hostPeriodNs =
        options.hostClockMhz > 0 ? 1000.0 / options.hostClockMhz : 0;

    // Combinational depth of every boundary source port, from the
    // flattened source partition.
    std::vector<DataflowGraph> graphs;
    graphs.reserve(plan.partitions.size());
    for (const auto &pc : plan.partitions)
        graphs.emplace_back(passes::flattenAll(pc));

    report.channels.resize(plan.channels.size());
    for (size_t c = 0; c < plan.channels.size(); ++c) {
        const ChannelPlan &ch = plan.channels[c];
        ChannelCost &cost = report.channels[c];
        cost.index = int(c);
        cost.name = ch.name;
        cost.srcPart = ch.srcPart;
        cost.dstPart = ch.dstPart;
        cost.sinkClass = ch.sinkClass;
        cost.widthBits = ch.widthBits;
        cost.serNs = transport::tokenSerNs(options.link, ch.widthBits);
        cost.flightNs = transport::tokenLatencyNs(options.link);
        cost.costNs = cost.serNs + cost.flightNs;
        cost.chainNs = cost.costNs;
        cost.depChain = {ch.name};
        if (size_t(ch.srcPart) < graphs.size()) {
            for (int n : ch.netIndices)
                cost.combDepth = std::max(
                    cost.combDepth,
                    graphs[ch.srcPart].combDepthOf(
                        plan.nets[n].srcPort));
        }
    }

    // Dependency chaining: only exact mode chains within a target
    // cycle; fast-mode channels consume seed tokens from the
    // previous cycle and never wait on each other.
    std::map<std::string, size_t> by_name;
    for (size_t c = 0; c < plan.channels.size(); ++c)
        by_name[plan.channels[c].name] = c;
    if (plan.mode == PartitionMode::Exact &&
        !plan.channels.empty()) {
        auto deps = channelDependencies(plan, summaries);
        base::StringDigraph waits;
        for (size_t c = 0; c < plan.channels.size(); ++c) {
            waits.ensureNode(plan.channels[c].name);
            for (const auto &d : deps[c])
                if (by_name.count(d))
                    waits.addEdge(d, plan.channels[c].name);
        }
        auto comps = waits.stronglyConnectedComponents();
        std::reverse(comps.begin(), comps.end()); // deps first
        for (const auto &comp : comps) {
            if (comp.size() > 1 ||
                (comp.size() == 1 &&
                 waits.hasEdge(comp[0], comp[0]))) {
                // A wait-for cycle (LBDN003 territory): leave the
                // member chains at single-token cost.
                report.cyclic = true;
                continue;
            }
            ChannelCost &cost =
                report.channels[by_name.at(comp[0])];
            const ChannelCost *deepest = nullptr;
            for (const auto &d : deps[cost.index]) {
                auto it = by_name.find(d);
                if (it == by_name.end())
                    continue;
                const ChannelCost &dep =
                    report.channels[it->second];
                if (!deepest || dep.chainNs > deepest->chainNs)
                    deepest = &dep;
            }
            if (deepest) {
                cost.chainNs = cost.costNs + deepest->chainNs;
                cost.depChain = deepest->depChain;
                cost.depChain.push_back(cost.name);
            }
        }
    }

    // Per-partition roll-up.
    double total_chain = 0;
    for (const auto &c : report.channels)
        total_chain += c.chainNs;
    report.partitions.resize(plan.partitions.size());
    for (size_t p = 0; p < plan.partitions.size(); ++p) {
        PartitionCost &pc = report.partitions[p];
        pc.index = int(p);
        pc.name = partLabel(plan, p);
        pc.fame5Threads =
            p < plan.fame5Threads.size() ? plan.fame5Threads[p] : 1;
        pc.computeNs = report.hostPeriodNs * pc.fame5Threads;
        const ChannelCost *blocker = nullptr;
        for (const auto &c : report.channels) {
            if (c.srcPart == int(p))
                pc.outboundBits += c.widthBits;
            if (c.dstPart != int(p))
                continue;
            pc.inboundBits += c.widthBits;
            if (!blocker || c.chainNs > blocker->chainNs)
                blocker = &c;
        }
        if (blocker) {
            pc.waitNs = blocker->chainNs;
            pc.blockingChannel = blocker->name;
            report.channels[blocker->index].blocking = true;
        }
        pc.fmrLb = report.hostPeriodNs > 0
                       ? (pc.waitNs + pc.computeNs) /
                             report.hostPeriodNs
                       : 1.0;
        report.predictedFmrLb =
            std::max(report.predictedFmrLb, pc.fmrLb);
    }
    for (auto &c : report.channels)
        c.sharePct =
            total_chain > 0 ? 100.0 * c.chainNs / total_chain : 0.0;

    // Rank: deepest predicted chain first; name breaks ties
    // deterministically.
    std::sort(report.channels.begin(), report.channels.end(),
              [](const ChannelCost &a, const ChannelCost &b) {
                  if (a.chainNs != b.chainNs)
                      return a.chainNs > b.chainNs;
                  return a.name < b.name;
              });
    for (size_t i = 0; i < report.channels.size(); ++i)
        report.channels[i].rank = int(i) + 1;

    report.analysisMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    return report;
}

CutCostReport
analyzeCutCost(const PartitionPlan &plan, const CutCostOptions &options)
{
    std::vector<passes::PortDeps> summaries;
    summaries.reserve(plan.partitions.size());
    for (const auto &pc : plan.partitions) {
        passes::CombDepAnalysis analysis(pc,
                                         passes::LoopPolicy::Record);
        summaries.push_back(analysis.forModule(pc.topName));
    }
    return analyzeCutCost(plan, summaries, options);
}

void
CutCostReport::writeJson(std::ostream &os,
                         const std::string &target) const
{
    obs::JsonWriter w(os);
    w.beginObject();
    w.key("schema");
    w.value("fireaxe.analysis.v1");
    if (!target.empty()) {
        w.key("target");
        w.value(target);
    }
    w.key("mode");
    w.value(mode);
    w.key("link");
    w.value(linkName);
    w.key("host_clock_mhz");
    w.value(hostClockMhz);
    w.key("host_period_ns");
    w.value(hostPeriodNs);
    w.key("predicted_fmr_lb");
    w.value(predictedFmrLb);
    w.key("cyclic");
    w.value(cyclic);
    w.key("analysis_ms");
    w.value(analysisMs);
    w.key("partitions");
    w.beginArray();
    for (const auto &p : partitions) {
        w.beginObject();
        w.key("part");
        w.value(p.index);
        w.key("name");
        w.value(p.name);
        w.key("fame5_threads");
        w.value(uint64_t(p.fame5Threads));
        w.key("inbound_bits");
        w.value(uint64_t(p.inboundBits));
        w.key("outbound_bits");
        w.value(uint64_t(p.outboundBits));
        w.key("wait_ns");
        w.value(p.waitNs);
        w.key("compute_ns");
        w.value(p.computeNs);
        w.key("predicted_fmr_lb");
        w.value(p.fmrLb);
        w.key("blocking_channel");
        w.value(p.blockingChannel);
        w.endObject();
    }
    w.endArray();
    w.key("channels");
    w.beginArray();
    for (const auto &c : channels) {
        w.beginObject();
        w.key("rank");
        w.value(c.rank);
        w.key("id");
        w.value(c.index);
        w.key("name");
        w.value(c.name);
        w.key("src");
        w.value(c.srcPart);
        w.key("dst");
        w.value(c.dstPart);
        w.key("sink_class");
        w.value(c.sinkClass);
        w.key("width_bits");
        w.value(uint64_t(c.widthBits));
        w.key("comb_depth");
        w.value(uint64_t(c.combDepth));
        w.key("ser_ns");
        w.value(c.serNs);
        w.key("flight_ns");
        w.value(c.flightNs);
        w.key("cost_ns");
        w.value(c.costNs);
        w.key("chain_ns");
        w.value(c.chainNs);
        w.key("share_pct");
        w.value(c.sharePct);
        w.key("blocking");
        w.value(c.blocking);
        w.key("dep_chain");
        w.beginArray();
        for (const auto &d : c.depChain)
            w.value(d);
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

std::string
CutCostReport::renderText() const
{
    std::ostringstream os;
    os << "cut-cost prediction (" << mode << " mode, " << linkName
       << " link, " << hostClockMhz << " MHz host):\n";
    os << "  predicted FMR lower bound: " << predictedFmrLb
       << (cyclic ? " [UNRELIABLE: wait-for cycle]" : "") << "\n";
    for (const auto &p : partitions) {
        os << "  partition " << p.index << " (" << p.name
           << "): wait " << p.waitNs << " ns + compute "
           << p.computeNs << " ns/cycle -> FMR >= " << p.fmrLb;
        if (!p.blockingChannel.empty())
            os << ", blocked by '" << p.blockingChannel << "'";
        os << "\n";
    }
    for (const auto &c : channels) {
        os << "  #" << c.rank << " " << c.name << ": "
           << c.widthBits << " bits/cycle, comb depth "
           << c.combDepth << ", chain " << c.chainNs << " ns ("
           << c.sharePct << "%)";
        if (c.depChain.size() > 1) {
            os << " via";
            for (const auto &d : c.depChain)
                os << " '" << d << "'";
        }
        os << "\n";
    }
    return os.str();
}

PlacementCost
estimatePlacementCost(const firrtl::Circuit &target,
                      const passes::CombDepAnalysis &deps,
                      const std::vector<std::vector<std::string>> &bins,
                      const PlacementCostOptions &options)
{
    const firrtl::Module &top = target.top();
    double host_period =
        options.hostClockMhz > 0 ? 1000.0 / options.hostClockMhz
                                 : 20.0;

    PlacementCost result;
    result.binWaitNs.assign(std::max<size_t>(bins.size(), 1), 0.0);
    if (bins.size() <= 1) {
        result.predictedFmrLb = 1.0;
        return result;
    }

    std::map<std::string, int> bin_of; // instance -> bin; absent = 0
    for (size_t b = 0; b < bins.size(); ++b)
        for (const auto &inst : bins[b])
            bin_of[inst] = int(b);

    auto ownerBin = [&](const std::string &sig) {
        auto [owner, field] = firrtl::splitRef(sig);
        if (owner.empty() || !top.findInstance(owner))
            return 0; // top-local logic rides with the rest partition
        auto it = bin_of.find(owner);
        return it != bin_of.end() ? it->second : 0;
    };

    /** Is @p sig, read at the top level, combinationally coupled to
     *  its owner's inputs (a sink-class source in LI-BDN terms)? */
    auto isCombSource = [&](const std::string &sig) {
        auto [owner, field] = firrtl::splitRef(sig);
        const firrtl::Instance *inst =
            owner.empty() ? nullptr : top.findInstance(owner);
        if (inst) {
            const auto &summary = deps.forModule(inst->moduleName);
            return summary.isSinkOutput(field);
        }
        // Top-local wires are comb; regs and rdata are state.
        firrtl::SignalKind kind = top.resolve(target, sig).kind;
        return kind == firrtl::SignalKind::Wire;
    };

    // Directed cross-bin traffic: total bits and comb-coupled bits.
    struct Direction
    {
        unsigned totalBits = 0;
        unsigned sinkBits = 0;
    };
    std::map<std::pair<int, int>, Direction> directions;
    for (const auto &c : top.connects) {
        int dst = ownerBin(c.lhs);
        std::vector<std::string> refs;
        collectRefs(c.rhs, refs);
        for (const auto &r : refs) {
            int src = ownerBin(r);
            if (src == dst)
                continue;
            unsigned width = top.resolve(target, r).width;
            if (!width)
                width = 1;
            Direction &d = directions[{src, dst}];
            d.totalBits += width;
            if (isCombSource(r))
                d.sinkBits += width;
        }
    }

    // Channels at bin granularity, mirroring FireRipper's
    // channelization: exact mode splits a comb-coupled direction into
    // a source-class and a sink-class channel; fast mode ships one
    // seeded channel per direction.
    struct BinChannel
    {
        int src, dst;
        unsigned bits;
        bool sink;
        double costNs, chainNs;
    };
    std::vector<BinChannel> channels;
    bool exact = options.mode == PartitionMode::Exact;
    for (const auto &[dir, d] : directions) {
        auto cost = [&](unsigned bits) {
            return transport::tokenSerNs(options.link, bits) +
                   transport::tokenLatencyNs(options.link);
        };
        if (exact && d.sinkBits > 0) {
            if (d.totalBits > d.sinkBits) {
                unsigned bits = d.totalBits - d.sinkBits;
                channels.push_back({dir.first, dir.second, bits,
                                    false, cost(bits), cost(bits)});
            }
            channels.push_back({dir.first, dir.second, d.sinkBits,
                                true, cost(d.sinkBits),
                                cost(d.sinkBits)});
        } else {
            channels.push_back({dir.first, dir.second, d.totalBits,
                                false, cost(d.totalBits),
                                cost(d.totalBits)});
        }
    }

    // Chain fixpoint: a sink-class channel waits on its source bin's
    // inbound channels. Bounded iteration doubles as the cycle guard
    // (a true wait-for cycle would diverge; clamp and move on).
    if (exact) {
        for (size_t iter = 0; iter <= channels.size(); ++iter) {
            bool changed = false;
            for (auto &c : channels) {
                if (!c.sink)
                    continue;
                double in_chain = 0;
                for (const auto &o : channels)
                    if (o.dst == c.src)
                        in_chain = std::max(in_chain, o.chainNs);
                double next = c.costNs + in_chain;
                if (next > c.chainNs + 1e-9) {
                    c.chainNs = next;
                    changed = true;
                }
            }
            if (!changed)
                break;
        }
    }

    for (const auto &c : channels) {
        if (size_t(c.dst) < result.binWaitNs.size())
            result.binWaitNs[c.dst] =
                std::max(result.binWaitNs[c.dst], c.chainNs);
    }
    for (double wait : result.binWaitNs)
        result.predictedFmrLb =
            std::max(result.predictedFmrLb,
                     (wait + host_period) / host_period);
    return result;
}

} // namespace fireaxe::analyze
