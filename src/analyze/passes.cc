#include "analyze/passes.hh"

#include "passes/flatten.hh"

namespace fireaxe::analyze {

using firrtl::PortDir;

CircuitAnalysis
analyzeCircuit(const firrtl::Circuit &circuit,
               const CircuitAnalysisOptions &options)
{
    CircuitAnalysis out;
    out.graph = std::make_unique<DataflowGraph>(
        passes::flattenAll(circuit));
    const firrtl::Module &mod = out.graph->module();

    if (options.constants || options.xreach || options.deadLogic)
        out.consts = propagateConstants(*out.graph);

    if (options.constants) {
        for (const auto &p : mod.ports) {
            if (p.dir != PortDir::Output)
                continue;
            uint64_t value = 0;
            if (out.consts.isConst(p.name, &value))
                out.constOutputs.push_back(
                    {p.name, p.width, value});
        }
    }

    if (options.xreach) {
        out.xreach = reachUninitialized(*out.graph, out.consts);
        for (const auto &p : mod.ports) {
            if (p.dir != PortDir::Output)
                continue;
            if (out.xreach.isTainted(p.name))
                out.xEscapes.push_back(
                    {p.name, out.xreach.witness.at(p.name)});
        }
    }

    if (options.deadLogic)
        out.dead = refineDeadLogic(*out.graph, out.consts);

    return out;
}

} // namespace fireaxe::analyze
