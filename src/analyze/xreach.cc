#include "analyze/xreach.hh"

#include <deque>

namespace fireaxe::analyze {

XReachResult
reachUninitialized(const DataflowGraph &graph,
                   const ConstPropResult &consts)
{
    XReachResult result;
    for (const auto &r : graph.module().regs)
        if (!r.hasReset)
            result.sources.insert(r.name);
    if (result.sources.empty())
        return result;

    // Plain forward BFS is enough: taint is a two-point lattice and
    // every edge transfer is "propagate unless the sink is provably
    // constant". Seeding sources in name order makes the witness for
    // any multiply-reachable signal deterministic.
    std::deque<std::string> work;
    for (const auto &src : result.sources) {
        result.tainted.insert(src);
        result.witness[src] = src;
        work.push_back(src);
    }
    while (!work.empty()) {
        std::string cur = std::move(work.front());
        work.pop_front();
        for (const auto &next : graph.fullGraph().successors(cur)) {
            if (result.tainted.count(next))
                continue;
            // A constant sink can't be perturbed by the unknown bits.
            if (consts.isConst(next))
                continue;
            result.tainted.insert(next);
            result.witness[next] = result.witness[cur];
            work.push_back(next);
        }
    }
    return result;
}

} // namespace fireaxe::analyze
