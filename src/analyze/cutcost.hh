/**
 * @file
 * Static cut-cost analysis: predict, before any simulation runs,
 * which channels of a PartitionPlan will block partitions and what
 * FMR (host-cycles per target-cycle) the token protocol forces.
 *
 * The model prices one target cycle of the LI-BDN schedule:
 *
 *  - a token on channel c costs
 *      cost(c) = tokenSerNs(link, widthBits) + tokenLatencyNs(link);
 *  - in exact mode a sink-class channel cannot fire until every
 *    channel it combinationally depends on has delivered *this
 *    cycle's* token, so its effective latency is a chain:
 *      chain(c) = cost(c) + max over deps d of chain(d);
 *  - in fast mode every channel is seeded (consumes last cycle's
 *    token), so chain(c) = cost(c);
 *  - a partition must wait for the deepest chain among its inbound
 *    channels before it can close the cycle, while its own model
 *    evaluation costs hostPeriodNs x fame5Threads:
 *      fmrLb(p) = (wait(p) + hostPeriodNs*threads) / hostPeriodNs.
 *
 * This is a *lower bound*: it prices serialization, flight and
 * dependency chaining but not retransmissions, scheduler jitter or
 * host-side overhead — exactly the components `fireaxe-trace`'s
 * measured critical-path report attributes, which is what the
 * fig2 validation test compares against. Channel dependencies are
 * recomputed from the partition port summaries (the same
 * recomputation the LI-BDN verifier cross-checks declarations
 * against — channelDependencies() is shared with it).
 *
 * The report renders as `fireaxe.analysis.v1` JSON, shaped to be
 * diffable against `fireaxe.critpath.v1`: same channel names, ranked
 * by predicted blocking contribution.
 */

#ifndef FIREAXE_ANALYZE_CUTCOST_HH
#define FIREAXE_ANALYZE_CUTCOST_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "passes/combdep.hh"
#include "ripper/partition.hh"
#include "transport/link.hh"

namespace fireaxe::analyze {

/**
 * Recompute each channel's true dependency channels from the
 * partition port summaries: channel c depends on channel d when one
 * of c's source ports combinationally depends (per the summary of
 * c's source partition) on an input port that d delivers. Returned
 * per channel index, as sorted channel names.
 */
std::vector<std::vector<std::string>>
channelDependencies(const ripper::PartitionPlan &plan,
                    const std::vector<passes::PortDeps> &summaries);

/** Knobs of the cost model and its diagnostic thresholds. */
struct CutCostOptions
{
    transport::LinkParams link = transport::qsfpAurora();
    /** Host (FPGA) clock driving the partition models. */
    double hostClockMhz = 50.0;
    /** PLAN009 threshold: a channel whose boundary ports sit at this
     *  combinational depth or deeper marks a cut through deep logic
     *  (long intra-cycle dependency chains, fragile timing). */
    unsigned deepCombDepth = 12;
    /** PLAN010 threshold: warn-note a partition predicted to spend
     *  more than this share of each host cycle waiting for tokens. */
    double hotWaitSharePct = 50.0;
};

/** Per-channel prediction. */
struct ChannelCost
{
    int index = -1;            ///< plan.channels index
    std::string name;
    int srcPart = 0, dstPart = 0;
    bool sinkClass = false;
    unsigned widthBits = 0;
    /** Max combinational depth (driver hops) of the channel's source
     *  ports within the flattened source partition. */
    unsigned combDepth = 0;
    double serNs = 0.0;    ///< serialization occupancy per token
    double flightNs = 0.0; ///< link flight latency
    double costNs = 0.0;   ///< serNs + flightNs
    double chainNs = 0.0;  ///< costNs + deepest dependency chain
    /** Channel names on the longest chain, upstream first, this
     *  channel last. */
    std::vector<std::string> depChain;
    /** chainNs as a share of the sum over all channels (global
     *  predicted blocking contribution), percent. */
    double sharePct = 0.0;
    /** Predicted blocker: the deepest inbound chain of dstPart. */
    bool blocking = false;
    int rank = 0; ///< 1-based position in the ranked report
};

/** Per-partition prediction. */
struct PartitionCost
{
    int index = 0;
    std::string name;
    unsigned fame5Threads = 1;
    unsigned inboundBits = 0, outboundBits = 0;
    double waitNs = 0.0;    ///< deepest inbound chain per target cycle
    double computeNs = 0.0; ///< hostPeriodNs * fame5Threads
    double fmrLb = 1.0;     ///< (waitNs + computeNs) / hostPeriodNs
    std::string blockingChannel; ///< empty when no inbound channels
};

/** The full prediction for one plan. */
struct CutCostReport
{
    std::string mode;     ///< "exact" / "fast"
    std::string linkName;
    double hostClockMhz = 0.0;
    double hostPeriodNs = 0.0;
    double predictedFmrLb = 1.0; ///< max over partitions
    /** Channel wait-for cycle found; chain costs are then clamped to
     *  single-token costs and unreliable (the verifier's LBDN003
     *  rejects such plans anyway). */
    bool cyclic = false;
    double analysisMs = 0.0; ///< wall time of the analysis
    std::vector<ChannelCost> channels; ///< ranked, deepest chain first
    std::vector<PartitionCost> partitions;

    /** `fireaxe.analysis.v1`; @p target names the analyzed design. */
    void writeJson(std::ostream &os,
                   const std::string &target = "") const;
    std::string renderText() const;
};

/** Analyze a plan, reusing already-computed port summaries. */
CutCostReport analyzeCutCost(const ripper::PartitionPlan &plan,
                             const std::vector<passes::PortDeps> &summaries,
                             const CutCostOptions &options = {});

/** Convenience overload: computes the summaries itself. */
CutCostReport analyzeCutCost(const ripper::PartitionPlan &plan,
                             const CutCostOptions &options = {});

/**
 * Bin-granularity placement scoring for the auto-partitioner: given
 * top-level instance bins (bin 0 = rest-of-SoC logic), predict the
 * placement's FMR lower bound without running FireRipper. The same
 * cost model as analyzeCutCost, approximated at bin granularity
 * (cross-bin nets become channels; a sink-class channel waits on all
 * of its source bin's inbound channels).
 */
struct PlacementCostOptions
{
    transport::LinkParams link = transport::qsfpAurora();
    double hostClockMhz = 50.0;
    ripper::PartitionMode mode = ripper::PartitionMode::Exact;
};

struct PlacementCost
{
    double predictedFmrLb = 1.0;
    std::vector<double> binWaitNs; ///< per bin, per target cycle
};

PlacementCost
estimatePlacementCost(const firrtl::Circuit &target,
                      const passes::CombDepAnalysis &deps,
                      const std::vector<std::vector<std::string>> &bins,
                      const PlacementCostOptions &options = {});

} // namespace fireaxe::analyze

#endif // FIREAXE_ANALYZE_CUTCOST_HH
