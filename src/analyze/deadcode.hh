/**
 * @file
 * Dead / write-only logic refinement (on the src/analyze dataflow
 * framework).
 *
 * PR 4's IR005 check is a plain reverse BFS from the output ports
 * over the unflattened modules: anything that can't reach an output
 * is dead. This pass runs on the flattened netlist with two
 * refinements that catch strictly more:
 *
 *  - *Constant pruning*: a signal constant propagation proved
 *    constant needs none of its inputs — its liveness does not keep
 *    its fan-in alive. Likewise a mux whose selector is constant only
 *    keeps the taken arm (and the selector's own cone) alive.
 *  - *Write-only memories*: a memory whose rdata never reaches an
 *    output is pure write-only state — the whole write-port cone
 *    feeding it is dead weight on the FPGA.
 *
 * To avoid re-reporting what the baseline already catches, the result
 * separates baseline-dead signals from refined-only findings; the
 * verifier emits IR005 for the refined-only set (flat names) next to
 * the per-module baseline pass.
 */

#ifndef FIREAXE_ANALYZE_DEADCODE_HH
#define FIREAXE_ANALYZE_DEADCODE_HH

#include <set>
#include <string>
#include <vector>

#include "analyze/constprop.hh"
#include "analyze/dataflow.hh"

namespace fireaxe::analyze {

/** Result of a dead-logic refinement run. */
struct DeadLogicResult
{
    /** Wires/regs dead even under the baseline reverse BFS (the
     *  unrefined analysis would flag these too). */
    std::set<std::string> baselineDead;
    /** Wires/regs alive under the baseline but dead once constant
     *  pruning is applied — the refinement's added value. */
    std::set<std::string> refinedDead;
    /** Memories whose rdata cannot reach any output port. */
    std::vector<std::string> writeOnlyMems;
};

/** Run the refinement. @p consts must come from the same graph. */
DeadLogicResult refineDeadLogic(const DataflowGraph &graph,
                                const ConstPropResult &consts);

} // namespace fireaxe::analyze

#endif // FIREAXE_ANALYZE_DEADCODE_HH
