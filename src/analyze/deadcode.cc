#include "analyze/deadcode.hh"

#include <deque>
#include <map>

namespace fireaxe::analyze {

using firrtl::ExprKind;
using firrtl::ExprPtr;
using firrtl::Module;
using firrtl::PortDir;

namespace {

/** The refs of @p e that can still influence its value given the
 *  constant fixpoint: constant subtrees contribute nothing, a mux
 *  with a constant selector only exposes the taken arm. */
void
usedRefs(const ExprPtr &e, const ConstPropResult &consts,
         std::set<std::string> &out)
{
    if (consts.eval(e).isConst())
        return;
    if (e->kind == ExprKind::Ref) {
        out.insert(e->name);
        return;
    }
    if (e->kind == ExprKind::Mux) {
        ConstValue sel = consts.eval(e->args[0]);
        if (sel.isConst()) {
            usedRefs(e->args[sel.value ? 1 : 2], consts, out);
            return;
        }
    }
    for (const auto &arg : e->args)
        usedRefs(arg, consts, out);
}

/** Reverse-BFS liveness from the output ports over @p rev. */
std::set<std::string>
aliveSet(const Module &mod,
         const std::map<std::string, std::set<std::string>> &rev)
{
    std::set<std::string> alive;
    std::deque<std::string> work;
    for (const auto &p : mod.ports) {
        if (p.dir == PortDir::Output) {
            alive.insert(p.name);
            work.push_back(p.name);
        }
    }
    while (!work.empty()) {
        std::string cur = std::move(work.front());
        work.pop_front();
        auto it = rev.find(cur);
        if (it == rev.end())
            continue;
        for (const auto &src : it->second)
            if (alive.insert(src).second)
                work.push_back(src);
    }
    return alive;
}

} // namespace

DeadLogicResult
refineDeadLogic(const DataflowGraph &graph,
                const ConstPropResult &consts)
{
    const Module &mod = graph.module();

    // Baseline: every ref of every driver keeps its sink's sources
    // alive; observing rdata needs the whole memory write cone.
    std::map<std::string, std::set<std::string>> base_rev;
    // Refined: constant sinks need nothing; drivers contribute only
    // the refs that can still change the value.
    std::map<std::string, std::set<std::string>> fine_rev;

    for (const auto &c : mod.connects) {
        std::vector<std::string> refs;
        collectRefs(c.rhs, refs);
        base_rev[c.lhs].insert(refs.begin(), refs.end());
        if (!consts.isConst(c.lhs))
            usedRefs(c.rhs, consts, fine_rev[c.lhs]);
    }
    for (const auto &m : mod.mems) {
        std::set<std::string> srcs{m.name + ".raddr",
                                   m.name + ".waddr",
                                   m.name + ".wdata", m.name + ".wen"};
        base_rev[m.name + ".rdata"].insert(srcs.begin(), srcs.end());
        fine_rev[m.name + ".rdata"].insert(srcs.begin(), srcs.end());
    }

    std::set<std::string> base_alive = aliveSet(mod, base_rev);
    std::set<std::string> fine_alive = aliveSet(mod, fine_rev);

    DeadLogicResult result;
    auto classify = [&](const std::string &name) {
        if (!base_alive.count(name))
            result.baselineDead.insert(name);
        else if (!fine_alive.count(name))
            result.refinedDead.insert(name);
    };
    for (const auto &w : mod.wires)
        classify(w.name);
    for (const auto &r : mod.regs)
        classify(r.name);
    for (const auto &m : mod.mems)
        if (!fine_alive.count(m.name + ".rdata"))
            result.writeOnlyMems.push_back(m.name);
    return result;
}

} // namespace fireaxe::analyze
