#include "analyze/constprop.hh"

#include "base/bits.hh"
#include "rtlsim/ops.hh"

namespace fireaxe::analyze {

using firrtl::ExprKind;
using firrtl::ExprPtr;
using firrtl::SignalKind;

ConstValue
ConstValue::join(const ConstValue &a, const ConstValue &b)
{
    if (a.state == State::Bottom)
        return b;
    if (b.state == State::Bottom)
        return a;
    if (a.state == State::Const && b.state == State::Const &&
        a.value == b.value)
        return a;
    return top();
}

bool
ConstPropResult::isConst(const std::string &sig, uint64_t *out) const
{
    auto it = values.find(sig);
    if (it == values.end() || !it->second.isConst())
        return false;
    if (out)
        *out = it->second.value;
    return true;
}

const ConstValue &
ConstPropResult::valueOf(const std::string &sig) const
{
    static const ConstValue kTop = ConstValue::top();
    auto it = values.find(sig);
    return it != values.end() ? it->second : kTop;
}

namespace {

ConstValue
evalExpr(const ExprPtr &e,
         const std::map<std::string, ConstValue> &env)
{
    using State = ConstValue::State;
    switch (e->kind) {
      case ExprKind::Ref: {
        auto it = env.find(e->name);
        return it != env.end() ? it->second : ConstValue::top();
      }
      case ExprKind::Literal:
        return ConstValue::of(truncate(e->value, e->width));
      case ExprKind::UnOp: {
        ConstValue a = evalExpr(e->args[0], env);
        if (a.state != State::Const || e->width == 0)
            return a;
        return ConstValue::of(rtlsim::evalUnOp(
            e->unOp, a.value, e->args[0]->width, e->width));
      }
      case ExprKind::BinOp: {
        ConstValue a = evalExpr(e->args[0], env);
        ConstValue b = evalExpr(e->args[1], env);
        // Absorbing constants mask the other operand entirely: x&0,
        // x*0 and 0<<x are 0 no matter what x is (or becomes).
        bool a_zero = a.isConst() && a.value == 0;
        bool b_zero = b.isConst() && b.value == 0;
        using Op = firrtl::BinOpKind;
        if ((e->binOp == Op::And || e->binOp == Op::Mul) &&
            (a_zero || b_zero))
            return ConstValue::of(0);
        if ((e->binOp == Op::Shl || e->binOp == Op::Shr ||
             e->binOp == Op::Div || e->binOp == Op::Rem) &&
            a_zero)
            return ConstValue::of(0);
        if (a.state == State::Bottom || b.state == State::Bottom)
            return ConstValue::bottom();
        if (a.state != State::Const || b.state != State::Const ||
            e->width == 0)
            return ConstValue::top();
        return ConstValue::of(
            rtlsim::evalBinOp(e->binOp, a.value, b.value, e->width));
      }
      case ExprKind::Mux: {
        ConstValue sel = evalExpr(e->args[0], env);
        if (sel.state == State::Bottom)
            return ConstValue::bottom();
        if (sel.isConst())
            return evalExpr(e->args[sel.value ? 1 : 2], env);
        return ConstValue::join(evalExpr(e->args[1], env),
                                evalExpr(e->args[2], env));
      }
      case ExprKind::Bits: {
        ConstValue a = evalExpr(e->args[0], env);
        if (a.state != State::Const)
            return a;
        return ConstValue::of(extractBits(a.value, e->hi, e->lo));
      }
      case ExprKind::Cat: {
        ConstValue hi = evalExpr(e->args[0], env);
        ConstValue lo = evalExpr(e->args[1], env);
        if (hi.state == State::Bottom || lo.state == State::Bottom)
            return ConstValue::bottom();
        if (!hi.isConst() || !lo.isConst() || e->width == 0)
            return ConstValue::top();
        return ConstValue::of(truncate(
            (hi.value << e->args[1]->width) | lo.value, e->width));
      }
    }
    return ConstValue::top();
}

} // namespace

ConstValue
ConstPropResult::eval(const ExprPtr &e) const
{
    return evalExpr(e, values);
}

ConstPropResult
propagateConstants(const DataflowGraph &graph)
{
    ConstPropResult result;
    auto &env = result.values;

    // Optimistic start: every signal begins at Bottom so evalExpr
    // sees Bottom (not Top) for not-yet-visited operands — without
    // this a register whose next-value reads itself (or any ref
    // cycle through state) would collapse to Top on first visit
    // purely from worklist order. Names absent from the graph still
    // evaluate to Top, which is the right conservatism for clients
    // querying after the fixpoint.
    for (const auto &[sig, succs] : graph.fullGraph().adjacency()) {
        (void)succs;
        env[sig] = ConstValue::bottom();
    }

    const firrtl::Module &mod = graph.module();
    std::map<std::string, const firrtl::Reg *> regs;
    for (const auto &r : mod.regs)
        regs[r.name] = &r;

    graph.solveForward([&](const std::string &sig) {
        ConstValue next;
        SignalKind kind = graph.info(sig).kind;
        const ExprPtr *driver = graph.driverOf(sig);
        switch (kind) {
          case SignalKind::InPort:
          case SignalKind::InstOut:
          case SignalKind::MemRData:
            // Free inputs / unknown child logic / unknown array
            // contents: never constant.
            next = ConstValue::top();
            break;
          case SignalKind::Reg: {
            const firrtl::Reg *r = regs.at(sig);
            // The register's value over all time is the join of its
            // power-up value and everything the next-value expression
            // can produce. No reset network => unknown power-up.
            ConstValue base = r->hasReset
                                  ? ConstValue::of(
                                        truncate(r->init, r->width))
                                  : ConstValue::top();
            next = driver
                       ? ConstValue::join(base,
                                          evalExpr(*driver, env))
                       : base;
            break;
          }
          default:
            // Comb sinks: the driver's value; undriven signals (an
            // IR003 error upstream) conservatively Top.
            next = driver ? evalExpr(*driver, env)
                          : ConstValue::top();
            break;
        }
        ConstValue joined = ConstValue::join(env[sig], next);
        if (joined == env[sig])
            return false;
        env[sig] = joined;
        return true;
    });

    return result;
}

} // namespace fireaxe::analyze
