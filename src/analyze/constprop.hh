/**
 * @file
 * Constant propagation over a flattened module (SCCP-style, on the
 * src/analyze dataflow framework).
 *
 * The lattice per signal is Bottom < Const(v) < Top: Bottom means "no
 * value observed yet" (optimistic start), Const(v) means "provably
 * equal to v in every cycle of every execution", Top means "varies or
 * unknown". Register feedback is handled by joining the reset value
 * with the fixpoint value of the next-value expression; registers
 * without a reset network (Reg::hasReset == false) start at Top.
 * Folding uses rtlsim/ops.hh, the same single definition of operator
 * semantics both simulation engines execute, so "provably constant"
 * here means bit-exactly constant in simulation.
 *
 * Clients: constant-driven boundary detection (IR009), the dead-logic
 * refinement's mux-arm pruning, and X-reachability masking.
 */

#ifndef FIREAXE_ANALYZE_CONSTPROP_HH
#define FIREAXE_ANALYZE_CONSTPROP_HH

#include <cstdint>
#include <map>
#include <string>

#include "analyze/dataflow.hh"

namespace fireaxe::analyze {

/** One lattice value. */
struct ConstValue
{
    enum class State { Bottom, Const, Top };
    State state = State::Bottom;
    uint64_t value = 0;

    bool isConst() const { return state == State::Const; }
    bool isTop() const { return state == State::Top; }

    static ConstValue bottom() { return {}; }
    static ConstValue top() { return {State::Top, 0}; }
    static ConstValue of(uint64_t v) { return {State::Const, v}; }

    /** Lattice join (least upper bound). */
    static ConstValue join(const ConstValue &a, const ConstValue &b);

    bool
    operator==(const ConstValue &o) const
    {
        return state == o.state &&
               (state != State::Const || value == o.value);
    }
};

/** Result of a propagation run. */
struct ConstPropResult
{
    std::map<std::string, ConstValue> values;

    /** Is @p sig provably constant? Writes the value when so. */
    bool isConst(const std::string &sig, uint64_t *out = nullptr) const;

    const ConstValue &valueOf(const std::string &sig) const;

    /** Abstractly evaluate an expression under the fixpoint values
     *  (used by clients to re-query e.g. a pruned mux selector). */
    ConstValue eval(const firrtl::ExprPtr &e) const;
};

/** Run constant propagation to a fixpoint over the graph. */
ConstPropResult propagateConstants(const DataflowGraph &graph);

} // namespace fireaxe::analyze

#endif // FIREAXE_ANALYZE_CONSTPROP_HH
