/**
 * @file
 * The production pass pipeline of src/analyze: flatten a circuit,
 * run constant propagation, X-reachability and the dead-logic
 * refinement over it, and distill the findings that matter at a
 * partition boundary. src/verify translates these into stable
 * diagnostics (IR009 constant-driven boundary, IR010 X escape,
 * IR005 refinements); tools and tests can also consume the raw
 * results directly.
 */

#ifndef FIREAXE_ANALYZE_PASSES_HH
#define FIREAXE_ANALYZE_PASSES_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analyze/constprop.hh"
#include "analyze/deadcode.hh"
#include "analyze/dataflow.hh"
#include "analyze/xreach.hh"

namespace fireaxe::analyze {

/** Which passes to run. */
struct CircuitAnalysisOptions
{
    bool constants = true; ///< constant propagation + IR009 findings
    bool xreach = true;    ///< X-reachability + IR010 findings
    bool deadLogic = true; ///< dead/write-only refinement (IR005)
};

/** An output port proven constant: every token sent across this
 *  boundary carries the same value — the cut wastes link bandwidth
 *  and the downstream logic could fold it away. */
struct ConstBoundaryFinding
{
    std::string port;
    unsigned width = 0;
    uint64_t value = 0;
};

/** An output port an unreset register's unknown power-up value can
 *  reach: across a partition boundary this can diverge from the
 *  monolithic simulation. */
struct XEscapeFinding
{
    std::string port;
    std::string source; ///< witness unreset register (flat name)
};

/** Everything the pipeline computed, for diagnostics and tests. */
struct CircuitAnalysis
{
    /** The flattened netlist and its graphs (owned). */
    std::unique_ptr<DataflowGraph> graph;
    ConstPropResult consts;
    XReachResult xreach;
    DeadLogicResult dead;
    std::vector<ConstBoundaryFinding> constOutputs;
    std::vector<XEscapeFinding> xEscapes;
};

/** Run the pipeline over @p circuit (flattened internally). The
 *  circuit must be structurally valid (the verifier's IR001-IR008
 *  gate); see verify::Options::checkAnalyze for the gated entry. */
CircuitAnalysis analyzeCircuit(const firrtl::Circuit &circuit,
                               const CircuitAnalysisOptions &options = {});

} // namespace fireaxe::analyze

#endif // FIREAXE_ANALYZE_PASSES_HH
