#include "analyze/batching.hh"

#include <map>
#include <set>

#include "analyze/dataflow.hh"
#include "passes/flatten.hh"

namespace fireaxe::analyze {

using firrtl::SignalKind;
using ripper::PartitionPlan;

BatchLegalityReport
analyzeBatchLegality(const PartitionPlan &plan,
                     const BatchLegalityOptions &options)
{
    BatchLegalityReport report;
    report.channels.resize(plan.channels.size());

    // Which partition produces each input port of each partition.
    // -1 marks an externally-driven input (poked by a driver, not
    // delivered by any channel): the consumer cannot know it.
    std::map<std::pair<int, std::string>, int> input_source;
    for (const auto &net : plan.nets)
        input_source[{net.dstPart, net.dstPort}] = net.srcPart;

    // One flattened dataflow graph per source partition, built
    // lazily (a plan's channels usually originate from few
    // partitions).
    std::vector<std::unique_ptr<DataflowGraph>> graphs(
        plan.partitions.size());
    auto graphFor = [&](int p) -> DataflowGraph & {
        auto &g = graphs[size_t(p)];
        if (!g) {
            g = std::make_unique<DataflowGraph>(
                passes::flattenAll(plan.partitions[size_t(p)]));
        }
        return *g;
    };

    for (size_t c = 0; c < plan.channels.size(); ++c) {
        const ripper::ChannelPlan &ch = plan.channels[c];
        ChannelBatchInfo &info = report.channels[c];
        info.index = int(c);
        info.name = ch.name;
        info.srcPart = ch.srcPart;
        info.dstPart = ch.dstPart;
        info.legal = true;

        if (size_t(ch.srcPart) >= plan.partitions.size()) {
            info.legal = false;
            info.reason = "source partition index out of range";
            info.maxBatchDepth = 1;
            continue;
        }
        DataflowGraph &graph = graphFor(ch.srcPart);

        // Shadow cone: transitive fan-in of every source port, over
        // comb and sequential edges.
        std::set<std::string> cone;
        for (int n : ch.netIndices) {
            if (size_t(n) >= plan.nets.size())
                continue;
            auto fan = graph.fanInCone(plan.nets[n].srcPort);
            cone.insert(fan.begin(), fan.end());
        }

        for (const std::string &sig : cone) {
            firrtl::SignalInfo si = graph.info(sig);
            switch (si.kind) {
            case SignalKind::Reg:
                info.coneRegBits += si.width;
                break;
            case SignalKind::MemRAddr:
            case SignalKind::MemRData:
            case SignalKind::MemWAddr:
            case SignalKind::MemWData:
            case SignalKind::MemWEn:
                info.legal = false;
                if (info.reason.empty())
                    info.reason = "memory '" + sig +
                                  "' in the source cone (the "
                                  "consumer cannot mirror array "
                                  "state)";
                break;
            case SignalKind::InPort: {
                auto it = input_source.find({ch.srcPart, sig});
                int feeder =
                    it == input_source.end() ? -1 : it->second;
                if (feeder != ch.dstPart) {
                    info.legal = false;
                    if (info.reason.empty()) {
                        info.reason =
                            "source cone reads input '" + sig +
                            "' " +
                            (feeder < 0
                                 ? std::string("driven externally")
                                 : "delivered by partition p" +
                                       std::to_string(feeder)) +
                            ", which the consumer cannot reproduce "
                            "locally (combinationally-coupled "
                            "boundary)";
                    }
                }
                break;
            }
            default:
                break; // wires/outputs are shadow logic, not state
            }
            if (!info.legal)
                break;
        }

        if (info.legal && info.coneRegBits > options.maxConeRegBits) {
            info.legal = false;
            info.reason =
                "source cone holds " +
                std::to_string(info.coneRegBits) +
                " register bits of shadow state (budget " +
                std::to_string(options.maxConeRegBits) + ")";
        }

        info.maxBatchDepth = info.legal ? options.maxDepth : 1;
    }
    return report;
}

BatchLegalityReport
annotateBatchDepths(PartitionPlan &plan,
                    const BatchLegalityOptions &options)
{
    BatchLegalityReport report = analyzeBatchLegality(plan, options);
    for (size_t c = 0; c < plan.channels.size(); ++c)
        plan.channels[c].maxBatchDepth =
            report.channels[c].maxBatchDepth;
    return report;
}

} // namespace fireaxe::analyze
