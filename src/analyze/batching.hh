/**
 * @file
 * Static depth-N batching legality analysis.
 *
 * Depth-N token batching (libdn::TokenChannel::configureBatching)
 * amortizes the link round-trip over N target cycles: the consumer
 * reproduces the first N-1 tokens of each epoch locally from a
 * *shadow cone* — a replica of the producer-side logic that drives
 * the channel's source ports — refreshed by the register image the
 * epoch-boundary frame carries. That is only realizable when the
 * shadow cone is self-contained and small:
 *
 *  - it must hold no memories (mirroring an array would ship the
 *    array, defeating the amortization);
 *  - its register state must fit the per-frame image budget
 *    (maxConeRegBits);
 *  - every input port it reads must be driven by the *consumer*
 *    partition itself — the consumer knows those values locally.
 *    An input fed by a third partition (a combinationally-coupled
 *    boundary through someone else) makes the cone unreproducible.
 *
 * The cone is the transitive fan-in closure of the channel's source
 * ports over the full (sequential + combinational) dataflow graph of
 * the flattened source partition — the same analyze::DataflowGraph
 * substrate the PLAN009 comb-path check prices cuts with.
 *
 * Channels that pass get maxBatchDepth = options.maxDepth (the
 * executor clamps the requested ExecConfig::batchDepth to it);
 * channels that fail are clamped to 1, and verify's PLAN011 reports
 * the reason when batching was actually requested across them.
 */

#ifndef FIREAXE_ANALYZE_BATCHING_HH
#define FIREAXE_ANALYZE_BATCHING_HH

#include <string>
#include <vector>

#include "ripper/partition.hh"

namespace fireaxe::analyze {

struct BatchLegalityOptions
{
    /** Shadow-state budget: register bits the epoch-boundary frame
     *  may carry as the cone's refresh image. */
    unsigned maxConeRegBits = 4096;
    /** Depth granted to legal channels (the executor clamps the
     *  requested depth to this). */
    unsigned maxDepth = 1024;
};

/** Verdict for one channel. */
struct ChannelBatchInfo
{
    int index = -1; ///< plan.channels index
    std::string name;
    int srcPart = 0, dstPart = 0;
    bool legal = false;
    /** Deepest legal batch: options.maxDepth when legal, else 1. */
    unsigned maxBatchDepth = 1;
    /** Register bits of the source cone (the shadow image size). */
    unsigned coneRegBits = 0;
    /** Why the channel is clamped; empty when legal. */
    std::string reason;
};

struct BatchLegalityReport
{
    std::vector<ChannelBatchInfo> channels; ///< plan.channels order
};

/** Run the legality analysis over every channel of @p plan. */
BatchLegalityReport
analyzeBatchLegality(const ripper::PartitionPlan &plan,
                     const BatchLegalityOptions &options = {});

/** Run the analysis and record each verdict in the plan
 *  (ChannelPlan::maxBatchDepth). Returns the report. */
BatchLegalityReport
annotateBatchDepths(ripper::PartitionPlan &plan,
                    const BatchLegalityOptions &options = {});

} // namespace fireaxe::analyze

#endif // FIREAXE_ANALYZE_BATCHING_HH
