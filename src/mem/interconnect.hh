/**
 * @file
 * Bus/NoC interconnect contention models for the leaky-DMA study
 * (Fig. 9 compares a crossbar bus against a ring/torus NoC).
 *
 * A crossbar concentrates all LLC traffic on one arbitration point:
 * low per-transaction overhead, but queueing delay explodes as
 * offered load approaches the single service rate. A ring NoC pays
 * more per transaction (hop traversal) but its links serve traffic
 * in parallel, so it degrades gracefully — exactly the trade-off
 * Fig. 9 exhibits ("a NoC has a higher per bus transaction overhead
 * compared to a cross-bar under low load, but it scales better
 * under higher load").
 */

#ifndef FIREAXE_MEM_INTERCONNECT_HH
#define FIREAXE_MEM_INTERCONNECT_HH

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

namespace fireaxe::mem {

/**
 * Abstract interconnect: serve one bus transaction issued at time
 * @p t (ns); returns the time the transaction reaches the LLC.
 */
class Interconnect
{
  public:
    virtual ~Interconnect() = default;
    virtual double serve(double t) = 0;
    virtual std::string name() const = 0;
};

/** Central crossbar: single arbitration queue. */
class CrossbarBus : public Interconnect
{
  public:
    CrossbarBus(double service_ns = 4.0, double base_ns = 6.0)
        : serviceNs_(service_ns), baseNs_(base_ns)
    {}

    double
    serve(double t) override
    {
        double start = std::max(t, nextFree_);
        nextFree_ = start + serviceNs_;
        return nextFree_ + baseNs_;
    }

    std::string name() const override { return "xbar"; }

  private:
    double serviceNs_;
    double baseNs_;
    double nextFree_ = 0.0;
};

/** Ring/torus NoC: parallel links, higher per-hop latency. */
class RingNoc : public Interconnect
{
  public:
    explicit RingNoc(unsigned links = 4, double service_ns = 4.0,
                     double hop_ns = 22.0)
        : links_(std::max(1u, links), 0.0), serviceNs_(service_ns),
          hopNs_(hop_ns)
    {}

    double
    serve(double t) override
    {
        // Route on the least-loaded link (shortest-path adaptive
        // routing distributes load across ring segments).
        auto slot = std::min_element(links_.begin(), links_.end());
        double start = std::max(t, *slot);
        *slot = start + serviceNs_;
        return *slot + hopNs_;
    }

    std::string name() const override { return "ring"; }

  private:
    std::vector<double> links_;
    double serviceNs_;
    double hopNs_;
};

} // namespace fireaxe::mem

#endif // FIREAXE_MEM_INTERCONNECT_HH
