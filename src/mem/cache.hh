/**
 * @file
 * Way-partitioned last-level cache model with DDIO semantics.
 *
 * Data Direct I/O dedicates a configurable number of LLC ways to I/O
 * devices: the NIC allocates incoming packet lines only in those
 * ways, while cores allocate in the remaining ways. Lookups hit on
 * lines anywhere. When the I/O buffer footprint exceeds the DDIO
 * ways' capacity, incoming DMA evicts packet lines the cores have
 * not consumed yet — the leaky-DMA effect of Section V-C.
 */

#ifndef FIREAXE_MEM_CACHE_HH
#define FIREAXE_MEM_CACHE_HH

#include <cstdint>
#include <vector>

#include "base/logging.hh"

namespace fireaxe::mem {

/** Which way partition an allocation may use. */
enum class WayClass { Io, Core };

/** Cache geometry. */
struct CacheConfig
{
    uint64_t sizeBytes = 128 * 1024;
    unsigned ways = 8;
    unsigned lineBytes = 64;
    /** Ways reserved for I/O (DDIO) allocation. */
    unsigned ioWays = 2;
};

/** Outcome of one access. */
struct AccessResult
{
    bool hit = false;
    bool writeback = false; ///< a dirty victim was evicted
};

/**
 * A set-associative, LRU, write-allocate cache with way-partitioned
 * allocation.
 */
class WayPartitionedCache
{
  public:
    explicit WayPartitionedCache(const CacheConfig &cfg);

    /** Perform an access at logical time @p time (drives LRU). */
    AccessResult access(uint64_t addr, bool write, WayClass cls,
                        uint64_t time);

    /** Is the line currently resident (no state change)? */
    bool probe(uint64_t addr) const;

    uint64_t numSets() const { return sets_; }
    const CacheConfig &config() const { return cfg_; }

    /** Statistics. */
    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t writebacks() const { return writebacks_; }

    void
    resetStats()
    {
        hits_ = misses_ = writebacks_ = 0;
    }

  private:
    struct Line
    {
        uint64_t tag = 0;
        uint64_t lastUse = 0;
        bool valid = false;
        bool dirty = false;
    };

    CacheConfig cfg_;
    uint64_t sets_;
    std::vector<Line> lines_; // sets_ x ways
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t writebacks_ = 0;
};

} // namespace fireaxe::mem

#endif // FIREAXE_MEM_CACHE_HH
