#include "mem/cache.hh"

namespace fireaxe::mem {

WayPartitionedCache::WayPartitionedCache(const CacheConfig &cfg)
    : cfg_(cfg)
{
    FIREAXE_ASSERT(cfg.ways >= 2 && cfg.ioWays >= 1 &&
                   cfg.ioWays < cfg.ways,
                   "bad way partition: ", cfg.ioWays, "/", cfg.ways);
    uint64_t lines = cfg.sizeBytes / cfg.lineBytes;
    FIREAXE_ASSERT(lines % cfg.ways == 0);
    sets_ = lines / cfg.ways;
    FIREAXE_ASSERT((sets_ & (sets_ - 1)) == 0,
                   "set count must be a power of two");
    lines_.resize(lines);
}

AccessResult
WayPartitionedCache::access(uint64_t addr, bool write, WayClass cls,
                            uint64_t time)
{
    uint64_t line_addr = addr / cfg_.lineBytes;
    uint64_t set = line_addr & (sets_ - 1);
    uint64_t tag = line_addr >> 1; // full line address as tag is fine
    Line *set_base = &lines_[set * cfg_.ways];

    AccessResult result;
    // Hits may be found in any way.
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        Line &line = set_base[w];
        if (line.valid && line.tag == tag) {
            line.lastUse = time;
            line.dirty = line.dirty || write;
            ++hits_;
            result.hit = true;
            return result;
        }
    }

    // Miss: allocate within the class's way partition only.
    ++misses_;
    unsigned lo = cls == WayClass::Io ? 0 : cfg_.ioWays;
    unsigned hi = cls == WayClass::Io ? cfg_.ioWays : cfg_.ways;
    Line *victim = &set_base[lo];
    for (unsigned w = lo; w < hi; ++w) {
        Line &line = set_base[w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lastUse < victim->lastUse)
            victim = &line;
    }
    if (victim->valid && victim->dirty) {
        result.writeback = true;
        ++writebacks_;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->dirty = write;
    victim->lastUse = time;
    return result;
}

bool
WayPartitionedCache::probe(uint64_t addr) const
{
    uint64_t line_addr = addr / cfg_.lineBytes;
    uint64_t set = line_addr & (sets_ - 1);
    uint64_t tag = line_addr >> 1;
    const Line *set_base = &lines_[set * cfg_.ways];
    for (unsigned w = 0; w < cfg_.ways; ++w)
        if (set_base[w].valid && set_base[w].tag == tag)
            return true;
    return false;
}

} // namespace fireaxe::mem
