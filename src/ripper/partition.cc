#include "ripper/partition.hh"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <tuple>

#include "base/logging.hh"
#include "firrtl/builder.hh"
#include "passes/combdep.hh"
#include "passes/flatten.hh"
#include "ripper/boundary.hh"

namespace fireaxe::ripper {

using firrtl::Circuit;
using firrtl::Connect;
using firrtl::ExprKind;
using firrtl::ExprPtr;
using firrtl::Module;
using firrtl::PortDir;
using firrtl::splitRef;

namespace {

/** Turn a flat signal name into a legal, readable port name. */
std::string
sanitizeName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name)
        out.push_back((c == '/' || c == '.') ? '_' : c);
    return out;
}

/** Allocates unique names within one module namespace. */
class NameAllocator
{
  public:
    explicit NameAllocator(const Module &mod)
    {
        for (const auto &p : mod.ports)
            used_.insert(p.name);
        for (const auto &w : mod.wires)
            used_.insert(w.name);
        for (const auto &r : mod.regs)
            used_.insert(r.name);
        for (const auto &m : mod.mems)
            used_.insert(m.name);
        for (const auto &i : mod.instances)
            used_.insert(i.name);
    }

    std::string
    allocate(const std::string &base)
    {
        std::string name = base;
        unsigned n = 0;
        while (!used_.insert(name).second)
            name = base + "_" + std::to_string(++n);
        return name;
    }

  private:
    std::set<std::string> used_;
};

/**
 * Copy-propagate single-reference wire aliases in a flat module so
 * that pure feedthroughs between partitions can be shortcut into
 * direct partition-to-partition nets.
 */
void
copyPropagate(Module &mod)
{
    // wire -> the ref it is an alias of (equal width, single-Ref rhs)
    std::map<std::string, std::string> alias;
    for (const auto &c : mod.connects) {
        const firrtl::Wire *w = mod.findWire(c.lhs);
        if (!w || c.rhs->kind != ExprKind::Ref)
            continue;
        if (c.rhs->width == w->width)
            alias[c.lhs] = c.rhs->name;
    }
    if (alias.empty())
        return;

    // Resolve alias chains (bounded by map size; cycles impossible in
    // a verified single-driver design).
    auto resolve = [&](std::string name) {
        size_t guard = alias.size() + 1;
        while (guard-- > 0) {
            auto it = alias.find(name);
            if (it == alias.end())
                return name;
            name = it->second;
        }
        return name;
    };

    std::map<std::string, std::string> resolved;
    for (const auto &[from, _] : alias)
        resolved[from] = resolve(from);

    for (auto &c : mod.connects)
        c.rhs = firrtl::renameRefs(c.rhs, resolved);

    // Drop alias wires that are no longer read.
    std::set<std::string> read;
    for (const auto &c : mod.connects) {
        std::vector<std::string> refs;
        collectRefs(c.rhs, refs);
        read.insert(refs.begin(), refs.end());
    }
    std::set<std::string> dead;
    for (const auto &[from, _] : resolved)
        if (!read.count(from))
            dead.insert(from);
    std::erase_if(mod.connects, [&](const Connect &c) {
        return dead.count(c.lhs) != 0;
    });
    std::erase_if(mod.wires, [&](const firrtl::Wire &w) {
        return dead.count(w.name) != 0;
    });
}

struct ChainNode
{
    int part;
    std::string port;

    bool
    operator<(const ChainNode &other) const
    {
        return std::tie(part, port) < std::tie(other.part, other.port);
    }
};

/**
 * Exact-mode boundary verification (Section III-A1): reject
 * combinational dependency chains that would require more than two
 * link crossings per cycle, and token-dependency cycles that would
 * deadlock. Weight-1 edges are intra-partition input->output
 * combinational paths; weight-0 edges are the boundary nets.
 */
void
checkDependencyChains(const PartitionPlan &plan,
                      const std::vector<passes::PortDeps> &summaries,
                      const std::vector<passes::CombDepAnalysis *>
                          &analyses)
{
    std::map<ChainNode, std::vector<std::pair<ChainNode, int>>> graph;

    for (size_t p = 0; p < plan.partitions.size(); ++p) {
        for (const auto &[out, ins] : summaries[p].deps) {
            for (const auto &in : ins) {
                graph[{int(p), in}].push_back(
                    {{int(p), out}, 1});
            }
        }
    }
    for (const auto &net : plan.nets) {
        graph[{net.srcPart, net.srcPort}].push_back(
            {{net.dstPart, net.dstPort}, 0});
    }

    // DFS longest-path with cycle detection.
    std::map<ChainNode, int> state;  // 0 new, 1 on stack, 2 done
    std::map<ChainNode, int> depth;  // max weight to any leaf
    std::map<ChainNode, ChainNode> heavyNext;

    std::function<int(const ChainNode &)> dfs =
        [&](const ChainNode &node) -> int {
        auto sit = state.find(node);
        if (sit != state.end()) {
            if (sit->second == 1) {
                fatal("partition boundary contains a combinational "
                      "token-dependency cycle through partition ",
                      node.part, " port '", node.port,
                      "'; this boundary cannot be simulated in "
                      "exact-mode");
            }
            return depth[node];
        }
        state[node] = 1;
        int best = 0;
        auto git = graph.find(node);
        if (git != graph.end()) {
            for (const auto &[next, weight] : git->second) {
                int d = dfs(next) + weight;
                if (d > best) {
                    best = d;
                    heavyNext[node] = next;
                }
            }
        }
        state[node] = 2;
        depth[node] = best;
        return best;
    };

    std::vector<ChainNode> roots;
    for (const auto &[node, _] : graph)
        roots.push_back(node);
    for (const auto &node : roots) {
        if (dfs(node) >= 2) {
            // Reconstruct the offending chain for the diagnostic.
            std::ostringstream chain;
            ChainNode cur = node;
            chain << "p" << cur.part << "." << cur.port;
            while (heavyNext.count(cur)) {
                cur = heavyNext[cur];
                chain << " -> p" << cur.part << "." << cur.port;
            }
            // Expand with an intra-partition signal path if possible.
            std::string detail;
            (void)analyses;
            fatal("exact-mode: combinational dependency chain between "
                  "boundary ports exceeds the supported length "
                  "(more than two link crossings would be needed per "
                  "target cycle). Offending chain: ", chain.str(),
                  ". Re-partition so the boundary is register-to-",
                  "register on at least one side, or use fast-mode ",
                  "on a latency-insensitive boundary.");
        }
    }
}

} // namespace

std::vector<int>
PartitionPlan::channelsFrom(int src_part) const
{
    std::vector<int> out;
    for (size_t c = 0; c < channels.size(); ++c)
        if (channels[c].srcPart == src_part)
            out.push_back(int(c));
    return out;
}

PartitionPlan
partition(const Circuit &target, const PartitionSpec &spec)
{
    if (spec.groups.empty())
        fatal("partition spec has no groups");

    // Map instance path -> group (1-based partition index).
    std::map<std::string, int> path_group;
    std::set<std::string> all_paths;
    for (size_t g = 0; g < spec.groups.size(); ++g) {
        if (spec.groups[g].instancePaths.empty())
            fatal("partition group '", spec.groups[g].name,
                  "' selects no instances");
        for (const auto &path : spec.groups[g].instancePaths) {
            if (!path_group.emplace(path, int(g) + 1).second)
                fatal("instance '", path,
                      "' selected by more than one group");
            all_paths.insert(path);
        }
    }

    // --- Reparent: hoist selected instances to the top. ---
    Circuit flat = passes::flattenExcept(target, all_paths);
    Module &ftop = flat.top();

    // All requested paths must have materialized as kept instances.
    {
        std::set<std::string> found;
        for (const auto &inst : ftop.instances)
            found.insert(inst.name);
        for (const auto &path : all_paths) {
            if (!found.count(path))
                fatal("selected instance path '", path,
                      "' does not exist in the design");
        }
    }

    copyPropagate(ftop);

    auto ownerOf = [&](const std::string &ref_name) -> int {
        auto [owner, field] = splitRef(ref_name);
        if (owner.empty())
            return 0;
        auto it = path_group.find(owner);
        return it == path_group.end() ? 0 : it->second;
    };

    size_t num_parts = spec.groups.size() + 1;

    PartitionPlan plan;
    plan.mode = spec.mode;
    plan.partitionNames.resize(num_parts);
    plan.partitionNames[0] = "rest";
    plan.fame5Threads.assign(num_parts, 1);

    // --- Grouping: build partition top modules. ---
    std::vector<Module> pmods(num_parts);
    pmods[0].name = "Partition_rest";
    pmods[0].ports = ftop.ports;
    pmods[0].wires = ftop.wires;
    pmods[0].regs = ftop.regs;
    pmods[0].mems = ftop.mems;
    pmods[0].attrs = ftop.attrs;
    for (size_t g = 0; g < spec.groups.size(); ++g) {
        plan.partitionNames[g + 1] = spec.groups[g].name;
        plan.fame5Threads[g + 1] = spec.groups[g].fame5Threads;
        pmods[g + 1].name = "Partition_" + spec.groups[g].name;
    }
    for (const auto &inst : ftop.instances) {
        int g = path_group.at(inst.name);
        pmods[g].instances.push_back(inst);
    }

    // Classify connects: internal-to-group ones move inside.
    std::vector<Connect> rest_connects;
    for (const auto &c : ftop.connects) {
        int gl = ownerOf(c.lhs);
        std::vector<std::string> refs;
        collectRefs(c.rhs, refs);
        bool internal = gl > 0;
        for (const auto &r : refs) {
            if (ownerOf(r) != gl) {
                internal = false;
                break;
            }
        }
        if (internal)
            pmods[gl].connects.push_back(c);
        else
            rest_connects.push_back(c);
    }

    // --- Extract/Remove: punch boundary ports. ---
    std::vector<NameAllocator> alloc;
    alloc.reserve(num_parts);
    for (size_t p = 0; p < num_parts; ++p)
        alloc.emplace_back(pmods[p]);

    auto signalWidth = [&](const std::string &ref_name) -> unsigned {
        firrtl::SignalInfo info = ftop.resolve(flat, ref_name);
        FIREAXE_ASSERT(info.kind != firrtl::SignalKind::Unknown,
                       "unresolved flat signal ", ref_name);
        return info.width;
    };

    // Exported instance outputs: (flat ref) -> output port on its
    // owning partition. Shared by every consumer of that signal.
    std::map<std::string, std::string> export_port;
    auto exportSignal = [&](const std::string &ref_name) {
        auto it = export_port.find(ref_name);
        if (it != export_port.end())
            return it->second;
        int g = ownerOf(ref_name);
        FIREAXE_ASSERT(g > 0);
        unsigned width = signalWidth(ref_name);
        std::string pname = alloc[g].allocate(sanitizeName(ref_name));
        pmods[g].ports.push_back({pname, PortDir::Output, width});
        pmods[g].connects.push_back(
            {pname, firrtl::ref(ref_name, width)});
        export_port[ref_name] = pname;
        return pname;
    };

    // Imports into the rest partition: (flat ref) -> rest input port.
    std::map<std::string, std::string> rest_import_port;
    auto importToRest = [&](const std::string &ref_name) {
        auto it = rest_import_port.find(ref_name);
        if (it != rest_import_port.end())
            return it->second;
        unsigned width = signalWidth(ref_name);
        std::string pname = alloc[0].allocate(sanitizeName(ref_name));
        pmods[0].ports.push_back({pname, PortDir::Input, width});
        rest_import_port[ref_name] = pname;

        std::string src_port = exportSignal(ref_name);
        plan.nets.push_back({width, ownerOf(ref_name), 0, src_port,
                             pname, ref_name});
        return pname;
    };

    for (const auto &c : rest_connects) {
        int gl = ownerOf(c.lhs);
        // Pure feedthrough into a partition: direct net, bypassing
        // the rest partition entirely.
        if (gl > 0 && c.rhs->kind == ExprKind::Ref &&
            ownerOf(c.rhs->name) > 0 &&
            signalWidth(c.rhs->name) == signalWidth(c.lhs)) {
            int gs = ownerOf(c.rhs->name);
            unsigned width = signalWidth(c.lhs);
            std::string src_port = exportSignal(c.rhs->name);
            std::string dst_port =
                alloc[gl].allocate(sanitizeName(c.lhs));
            pmods[gl].ports.push_back(
                {dst_port, PortDir::Input, width});
            pmods[gl].connects.push_back(
                {c.lhs, firrtl::ref(dst_port, width)});
            plan.nets.push_back(
                {width, gs, gl, src_port, dst_port, c.lhs});
            continue;
        }

        // General case: the expression stays in the rest partition.
        std::map<std::string, std::string> renames;
        std::vector<std::string> refs;
        collectRefs(c.rhs, refs);
        for (const auto &r : refs)
            if (ownerOf(r) > 0)
                renames[r] = importToRest(r);
        ExprPtr rhs = renames.empty()
                          ? c.rhs
                          : firrtl::renameRefs(c.rhs, renames);

        if (gl > 0) {
            // Rest drives a partitioned instance input: punch an
            // output port on rest and an input port on the partition.
            unsigned width = signalWidth(c.lhs);
            std::string rest_port =
                alloc[0].allocate(sanitizeName(c.lhs));
            pmods[0].ports.push_back(
                {rest_port, PortDir::Output, width});
            pmods[0].connects.push_back({rest_port, rhs});

            std::string dst_port =
                alloc[gl].allocate(sanitizeName(c.lhs));
            pmods[gl].ports.push_back(
                {dst_port, PortDir::Input, width});
            pmods[gl].connects.push_back(
                {c.lhs, firrtl::ref(dst_port, width)});
            plan.nets.push_back(
                {width, 0, gl, rest_port, dst_port, c.lhs});
        } else {
            pmods[0].connects.push_back({c.lhs, rhs});
        }
    }

    // --- Assemble per-partition circuits. ---
    for (size_t p = 0; p < num_parts; ++p) {
        Circuit pc;
        pc.topName = pmods[p].name;
        // Copy kept module definitions reachable from this partition.
        std::function<void(const std::string &)> copyDef =
            [&](const std::string &mod_name) {
                if (pc.findModule(mod_name))
                    return;
                const Module *def = flat.findModule(mod_name);
                FIREAXE_ASSERT(def, "missing module ", mod_name);
                pc.addModule(*def);
                for (const auto &inst : def->instances)
                    copyDef(inst.moduleName);
            };
        for (const auto &inst : pmods[p].instances)
            copyDef(inst.moduleName);
        pc.addModule(pmods[p]);
        plan.partitions.push_back(std::move(pc));
    }
    for (auto &pc : plan.partitions)
        firrtl::verifyCircuit(pc);

    // --- Combinational analysis of each partition. ---
    std::vector<std::unique_ptr<passes::CombDepAnalysis>> analyses;
    std::vector<passes::PortDeps> summaries;
    for (const auto &pc : plan.partitions) {
        analyses.push_back(
            std::make_unique<passes::CombDepAnalysis>(pc));
        summaries.push_back(analyses.back()->forModule(pc.topName));
    }

    if (spec.mode == PartitionMode::Exact) {
        std::vector<passes::CombDepAnalysis *> raw;
        for (auto &a : analyses)
            raw.push_back(a.get());
        checkDependencyChains(plan, summaries, raw);
    }

    // --- Channelization. ---
    bool any_comb_boundary = false;
    std::map<std::pair<int, int>, std::vector<int>> by_pair;
    for (size_t n = 0; n < plan.nets.size(); ++n) {
        by_pair[{plan.nets[n].srcPart, plan.nets[n].dstPart}]
            .push_back(int(n));
    }

    for (const auto &[pair, net_idxs] : by_pair) {
        auto [src, dst] = pair;
        std::vector<int> source_nets, sink_nets;
        for (int n : net_idxs) {
            bool sink = summaries[src].isSinkOutput(
                plan.nets[n].srcPort);
            (sink ? sink_nets : source_nets).push_back(n);
        }
        if (!sink_nets.empty())
            any_comb_boundary = true;

        auto addChannel = [&](const std::string &suffix,
                              std::vector<int> nets, bool sink_class) {
            if (nets.empty())
                return;
            ChannelPlan ch;
            ch.name = "p" + std::to_string(src) + "_to_p" +
                      std::to_string(dst) + suffix;
            ch.srcPart = src;
            ch.dstPart = dst;
            ch.sinkClass = sink_class;
            for (int n : nets)
                ch.widthBits += plan.nets[n].width;
            ch.netIndices = std::move(nets);
            plan.channels.push_back(std::move(ch));
        };

        if (spec.mode == PartitionMode::Exact) {
            addChannel("_src", std::move(source_nets), false);
            addChannel("_snk", std::move(sink_nets), true);
        } else {
            std::vector<int> all_nets(net_idxs);
            bool sink_class = !sink_nets.empty();
            addChannel("", std::move(all_nets), sink_class);
        }
    }

    // --- Declared channel dependencies. ---
    // For each channel, record which channels into its source
    // partition deliver the inputs its source ports combinationally
    // depend on. This is the declaration the static verifier
    // (src/verify) cross-checks against its own recomputation, and it
    // must be derived here from the pre-transform summaries: the
    // fast-mode ready-valid transform below rewrites the partitions.
    {
        std::map<std::pair<int, std::string>, std::string> in_channel;
        for (const auto &ch : plan.channels)
            for (int n : ch.netIndices)
                in_channel[{ch.dstPart, plan.nets[n].dstPort}] =
                    ch.name;
        for (auto &ch : plan.channels) {
            std::set<std::string> deps;
            for (int n : ch.netIndices) {
                const auto &port_deps = summaries[ch.srcPart].deps;
                auto it = port_deps.find(plan.nets[n].srcPort);
                if (it == port_deps.end())
                    continue;
                for (const auto &in : it->second) {
                    auto cit = in_channel.find({ch.srcPart, in});
                    if (cit != in_channel.end())
                        deps.insert(cit->second);
                }
            }
            ch.depChannels.assign(deps.begin(), deps.end());
        }
    }

    // --- Fast-mode ready-valid boundary transform. ---
    if (spec.mode == PartitionMode::Fast) {
        unsigned transformed =
            applyReadyValidTransforms(plan, target, path_group);
        if (any_comb_boundary && transformed == 0) {
            warn("fast-mode partition boundary has combinational "
                 "dependencies but no ready-valid annotations; "
                 "results will be cycle-approximate and backpressure "
                 "may be violated at the boundary");
        }
    }

    // --- Feedback. ---
    plan.feedback.resources.resize(num_parts);
    plan.feedback.interfaceWidths.assign(num_parts, 0);
    for (size_t p = 0; p < num_parts; ++p) {
        plan.feedback.resources[p] =
            passes::estimateResources(plan.partitions[p]);
    }
    for (const auto &net : plan.nets) {
        plan.feedback.interfaceWidths[net.srcPart] += net.width;
        plan.feedback.interfaceWidths[net.dstPart] += net.width;
    }
    for (const auto &ch : plan.channels) {
        plan.feedback.maxChannelWidth =
            std::max(plan.feedback.maxChannelWidth, ch.widthBits);
    }
    plan.feedback.linkCrossingsPerCycle =
        (spec.mode == PartitionMode::Exact && any_comb_boundary) ? 2
                                                                 : 1;
    return plan;
}

std::string
describePlan(const PartitionPlan &plan)
{
    std::ostringstream os;
    os << "FireRipper partition plan ("
       << (plan.mode == PartitionMode::Exact ? "exact" : "fast")
       << "-mode)\n";
    for (size_t p = 0; p < plan.partitions.size(); ++p) {
        const auto &res = plan.feedback.resources[p];
        os << "  partition " << p << " '" << plan.partitionNames[p]
           << "': " << res.luts << " LUTs, " << res.flipFlops
           << " FFs, " << res.brams << " BRAMs, boundary "
           << plan.feedback.interfaceWidths[p] << " bits";
        if (plan.fame5Threads[p] > 1)
            os << ", FAME-5 x" << plan.fame5Threads[p];
        os << "\n";
    }
    for (const auto &ch : plan.channels) {
        os << "  channel " << ch.name << ": " << ch.netIndices.size()
           << " nets, " << ch.widthBits << " bits"
           << (ch.sinkClass ? " (sink)" : " (source)") << "\n";
    }
    os << "  link crossings per target cycle: "
       << plan.feedback.linkCrossingsPerCycle << "\n";
    return os.str();
}

} // namespace fireaxe::ripper
