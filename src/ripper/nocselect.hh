/**
 * @file
 * NoC-partition-mode module selection (Section III-B, Fig. 4).
 *
 * NoC router boundaries are credit-based (latency-insensitive) and
 * have no combinational input->output dependencies, so they make
 * ideal partition seams. Instead of listing every module to extract,
 * the user names a set of router node indices; FireRipper grows a
 * wrapper around those routers by traversing the circuit
 * representation and pulling in every module that hangs off them
 * (protocol converters, tiles, ...) without being connected to any
 * unselected router.
 *
 * Router instances are identified by the "nocRouter" module
 * attribute with a "nocIndex" index attribute — set automatically by
 * the Constellation-style generator in src/target/noc.
 */

#ifndef FIREAXE_RIPPER_NOCSELECT_HH
#define FIREAXE_RIPPER_NOCSELECT_HH

#include <set>
#include <string>
#include <vector>

#include "firrtl/ir.hh"

namespace fireaxe::ripper {

/** A discovered NoC router node. */
struct NocRouterInfo
{
    std::string path;       ///< full instance path from the top
    unsigned index;         ///< router node index
    std::string parentPath; ///< instance path of the enclosing module
};

/** Enumerate all NoC router instances in the design. */
std::vector<NocRouterInfo> findNocRouters(const firrtl::Circuit &circuit);

/**
 * Compute the instance paths that form one NoC partition group: the
 * selected routers plus everything reachable from them in the
 * instance-connectivity graph without crossing an unselected router.
 * fatal() if an index is unknown or the routers do not share a
 * common enclosing module.
 */
std::set<std::string> selectNocGroup(const firrtl::Circuit &circuit,
                                     const std::set<unsigned> &indices);

} // namespace fireaxe::ripper

#endif // FIREAXE_RIPPER_NOCSELECT_HH
