/**
 * @file
 * Automated partitioning (the Section VIII-B future-work feature):
 * "FireRipper would need to be able to make rough per-FPGA resource
 * consumption estimates based on the RTL-level circuit
 * representation to provide users quick feedback about whether the
 * partition will fit on an FPGA or not. Using existing graph
 * partitioning tools to automatically search for boundaries that
 * are amenable to partitioning would be another possible
 * direction."
 *
 * autoPartition() implements that flow: it estimates each top-level
 * instance's resource footprint, greedily bin-packs instances onto
 * FPGAs (first-fit decreasing, with the rest-of-SoC logic charged to
 * partition 0), scores each feasible placement of an instance with
 * the static cut-cost model (analyze::estimatePlacementCost) and
 * takes the one minimizing the predicted FMR lower bound — i.e. the
 * boundary the token protocol will stall on least — breaking ties
 * toward stronger instance affinity (shared signal width), and
 * reports the projected per-FPGA utilization plus the predicted FMR
 * before any simulation is built.
 */

#ifndef FIREAXE_RIPPER_AUTOPARTITION_HH
#define FIREAXE_RIPPER_AUTOPARTITION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ripper/partition.hh"
#include "transport/link.hh"

namespace fireaxe::ripper {

/** Inputs to the automated flow. */
struct AutoPartitionOptions
{
    /** Usable (routability-derated) LUTs per FPGA. */
    uint64_t lutBudget = 1000000;
    /** Upper bound on FPGAs (including the rest partition). */
    unsigned maxFpgas = 8;
    PartitionMode mode = PartitionMode::Exact;
    /** Cost-model pricing of candidate placements (the scoring
     *  function): transport and host clock of the eventual sim. */
    transport::LinkParams link = transport::qsfpAurora();
    double hostClockMhz = 50.0;
    /** Disable cut-cost scoring (fall back to pure affinity) —
     *  mainly for A/B comparisons in tests and benchmarks. */
    bool costScoring = true;
};

/** Per-FPGA placement feedback. */
struct AutoPartitionBin
{
    std::vector<std::string> instances;
    uint64_t luts = 0;
    double utilization = 0.0;
};

/** Result: a ready-to-run spec plus the placement report. */
struct AutoPartitionResult
{
    PartitionSpec spec;   ///< empty groups if everything fits FPGA 0
    bool fits = false;    ///< all bins within budget
    unsigned fpgasUsed = 0;
    std::vector<AutoPartitionBin> bins; ///< bin 0 = rest partition
    /** Cut-cost model's predicted FMR lower bound for the chosen
     *  placement (1.0 for a single-FPGA placement). */
    double predictedFmrLb = 1.0;
};

/**
 * Compute an automatic placement of the top module's instances.
 * fatal() if a single instance exceeds the per-FPGA budget (no
 * legal placement exists at this granularity) or if more than
 * maxFpgas would be needed.
 */
AutoPartitionResult autoPartition(const firrtl::Circuit &target,
                                  const AutoPartitionOptions &opts);

/** Human-readable placement report. */
std::string describeAutoPartition(const AutoPartitionResult &result);

} // namespace fireaxe::ripper

#endif // FIREAXE_RIPPER_AUTOPARTITION_HH
