/**
 * @file
 * Automated partitioning (the Section VIII-B future-work feature):
 * "FireRipper would need to be able to make rough per-FPGA resource
 * consumption estimates based on the RTL-level circuit
 * representation to provide users quick feedback about whether the
 * partition will fit on an FPGA or not. Using existing graph
 * partitioning tools to automatically search for boundaries that
 * are amenable to partitioning would be another possible
 * direction."
 *
 * autoPartition() implements that flow: it estimates each top-level
 * instance's resource footprint, greedily bin-packs instances onto
 * FPGAs (first-fit decreasing, with the rest-of-SoC logic charged to
 * partition 0), prefers placements that keep directly-connected
 * instances together (narrower boundaries), and reports the
 * projected per-FPGA utilization before any simulation is built.
 */

#ifndef FIREAXE_RIPPER_AUTOPARTITION_HH
#define FIREAXE_RIPPER_AUTOPARTITION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ripper/partition.hh"

namespace fireaxe::ripper {

/** Inputs to the automated flow. */
struct AutoPartitionOptions
{
    /** Usable (routability-derated) LUTs per FPGA. */
    uint64_t lutBudget = 1000000;
    /** Upper bound on FPGAs (including the rest partition). */
    unsigned maxFpgas = 8;
    PartitionMode mode = PartitionMode::Exact;
};

/** Per-FPGA placement feedback. */
struct AutoPartitionBin
{
    std::vector<std::string> instances;
    uint64_t luts = 0;
    double utilization = 0.0;
};

/** Result: a ready-to-run spec plus the placement report. */
struct AutoPartitionResult
{
    PartitionSpec spec;   ///< empty groups if everything fits FPGA 0
    bool fits = false;    ///< all bins within budget
    unsigned fpgasUsed = 0;
    std::vector<AutoPartitionBin> bins; ///< bin 0 = rest partition
};

/**
 * Compute an automatic placement of the top module's instances.
 * fatal() if a single instance exceeds the per-FPGA budget (no
 * legal placement exists at this granularity) or if more than
 * maxFpgas would be needed.
 */
AutoPartitionResult autoPartition(const firrtl::Circuit &target,
                                  const AutoPartitionOptions &opts);

/** Human-readable placement report. */
std::string describeAutoPartition(const AutoPartitionResult &result);

} // namespace fireaxe::ripper

#endif // FIREAXE_RIPPER_AUTOPARTITION_HH
