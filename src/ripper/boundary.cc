#include "ripper/boundary.hh"

#include <vector>

#include "base/logging.hh"
#include "firrtl/builder.hh"
#include "ripper/partition.hh"

namespace fireaxe::ripper {

using firrtl::Circuit;
using firrtl::Connect;
using firrtl::ExprPtr;
using firrtl::Module;
using firrtl::PortDir;

namespace {

/** Indices of plan nets whose originating flat signal matches. */
std::vector<int>
findNets(const PartitionPlan &plan, const std::string &flat_signal)
{
    std::vector<int> out;
    for (size_t n = 0; n < plan.nets.size(); ++n)
        if (plan.nets[n].flatSignal == flat_signal)
            out.push_back(int(n));
    return out;
}

} // namespace

std::string
addSkidBufferModule(Circuit &circuit, const std::vector<unsigned> &widths)
{
    using namespace firrtl;

    // Name keyed by the width signature, deduplicated per circuit.
    std::string name = "SkidBuffer2";
    for (unsigned w : widths) {
        name += '_';
        name += std::to_string(w);
    }
    if (circuit.findModule(name))
        return name;

    // Latency-aware skid buffer. The fast-mode boundary delays valid
    // and ready by one target cycle each, so the source's view of
    // ready is two cycles stale: after enq_ready drops, up to two
    // more in-flight transactions can still arrive. The buffer
    // therefore advertises ready conservatively (fewer than 2
    // occupied of 4 slots) while accepting arrivals up to its full
    // capacity — in-flight entries are never lost, and the gated
    // source never produces duplicates.
    constexpr unsigned depth = 4;      // total slots
    constexpr unsigned threshold = 2;  // advertise-ready threshold
    constexpr unsigned cw = 3;         // count width
    constexpr unsigned pw = 2;         // pointer width

    Module m;
    m.name = name;
    m.attrs["fireRipperGenerated"] = "skidBuffer";
    m.ports.push_back({"enq_valid", PortDir::Input, 1});
    m.ports.push_back({"enq_ready", PortDir::Output, 1});
    m.ports.push_back({"deq_valid", PortDir::Output, 1});
    m.ports.push_back({"deq_ready", PortDir::Input, 1});
    for (size_t i = 0; i < widths.size(); ++i) {
        m.ports.push_back({"enq_bits" + std::to_string(i),
                           PortDir::Input, widths[i]});
        m.ports.push_back({"deq_bits" + std::to_string(i),
                           PortDir::Output, widths[i]});
    }

    m.regs.push_back({"cnt", cw, 0});
    m.regs.push_back({"head", pw, 0});
    m.regs.push_back({"tail", pw, 0});
    m.wires.push_back({"do_enq", 1});
    m.wires.push_back({"do_deq", 1});

    auto cnt = ref("cnt", cw);
    auto head = ref("head", pw);
    auto tail = ref("tail", pw);
    auto enq_valid = ref("enq_valid", 1);
    auto deq_ready = ref("deq_ready", 1);
    auto do_enq = ref("do_enq", 1);
    auto do_deq = ref("do_deq", 1);

    auto advertise = eLt(cnt, lit(threshold, cw));
    auto has_space = eLt(cnt, lit(depth, cw));
    auto non_empty = eNeq(cnt, lit(0, cw));
    m.connects.push_back({"enq_ready", advertise});
    m.connects.push_back({"deq_valid", non_empty});
    m.connects.push_back({"do_enq", eAnd(enq_valid, has_space)});
    m.connects.push_back({"do_deq", eAnd(deq_ready, non_empty)});
    m.connects.push_back(
        {"cnt", bits(eSub(eAdd(cnt, do_enq), do_deq), cw - 1, 0)});
    m.connects.push_back(
        {"head",
         mux(do_deq, bits(eAdd(head, lit(1, pw)), pw - 1, 0), head)});
    m.connects.push_back(
        {"tail",
         mux(do_enq, bits(eAdd(tail, lit(1, pw)), pw - 1, 0), tail)});

    for (size_t i = 0; i < widths.size(); ++i) {
        unsigned w = widths[i];
        std::string store = "store" + std::to_string(i);
        m.mems.push_back({store, depth, w});
        m.connects.push_back({store + ".raddr", head});
        m.connects.push_back(
            {"deq_bits" + std::to_string(i),
             ref(store + ".rdata", w)});
        m.connects.push_back({store + ".waddr", tail});
        m.connects.push_back(
            {store + ".wdata",
             ref("enq_bits" + std::to_string(i), w)});
        m.connects.push_back({store + ".wen", do_enq});
    }

    circuit.addModule(std::move(m));
    return name;
}

unsigned
applyReadyValidTransforms(PartitionPlan &plan, const Circuit &target,
                          const std::map<std::string, int> &path_group)
{
    (void)target;
    unsigned transformed = 0;
    unsigned skid_count = 0;

    for (const auto &[path, group] : path_group) {
        const Circuit &pc = plan.partitions[group];
        const Module &ptop = pc.top();
        const firrtl::Instance *inst = ptop.findInstance(path);
        if (!inst)
            continue;
        const Module *def = pc.findModule(inst->moduleName);
        FIREAXE_ASSERT(def, "missing module ", inst->moduleName);

        for (const auto &bundle : def->rvBundles) {
            std::string flat_valid = path + "." + bundle.validPort;
            std::string flat_ready = path + "." + bundle.readyPort;

            auto valid_nets = findNets(plan, flat_valid);
            auto ready_nets = findNets(plan, flat_ready);
            if (valid_nets.size() != 1 || ready_nets.size() != 1)
                continue; // bundle does not cross, or fans out

            std::vector<int> data_nets;
            bool data_ok = true;
            for (const auto &dp : bundle.dataPorts) {
                auto nets = findNets(plan, path + "." + dp);
                if (nets.size() != 1) {
                    data_ok = false;
                    break;
                }
                data_nets.push_back(nets[0]);
            }
            if (!data_ok) {
                warn("ready-valid bundle '", bundle.name, "' of '",
                     path, "' only partially crosses the partition "
                     "boundary; skipping transform");
                continue;
            }

            const BoundaryNet &vnet = plan.nets[valid_nets[0]];
            const BoundaryNet &rnet = plan.nets[ready_nets[0]];

            int src_side, snk_side;
            if (bundle.isSource) {
                src_side = vnet.srcPart;
                snk_side = vnet.dstPart;
            } else {
                src_side = vnet.srcPart;
                snk_side = vnet.dstPart;
            }
            if (rnet.srcPart != snk_side || rnet.dstPart != src_side) {
                warn("ready-valid bundle '", bundle.name, "' of '",
                     path, "' has inconsistent boundary direction; "
                     "skipping transform");
                continue;
            }
            bool dirs_ok = true;
            for (int dn : data_nets) {
                if (plan.nets[dn].srcPart != src_side ||
                    plan.nets[dn].dstPart != snk_side) {
                    dirs_ok = false;
                    break;
                }
            }
            if (!dirs_ok) {
                warn("ready-valid bundle '", bundle.name, "' of '",
                     path, "' mixes directions; skipping transform");
                continue;
            }

            // --- Source side: valid := valid & delayed-ready. ---
            {
                Module &src_mod = plan.partitions[src_side].top();
                bool gated = false;
                for (auto &c : src_mod.connects) {
                    if (c.lhs == vnet.srcPort) {
                        c.rhs = firrtl::eAnd(
                            c.rhs, firrtl::ref(rnet.dstPort, 1));
                        gated = true;
                        break;
                    }
                }
                FIREAXE_ASSERT(gated, "no driver for boundary valid ",
                               vnet.srcPort);
            }

            // --- Sink side: insert a skid buffer at the ports. ---
            {
                Circuit &snk_circuit = plan.partitions[snk_side];
                Module &snk_mod = snk_circuit.top();

                std::vector<unsigned> widths;
                for (int dn : data_nets)
                    widths.push_back(plan.nets[dn].width);
                std::string skid_mod =
                    addSkidBufferModule(snk_circuit, widths);
                std::string skid =
                    "rv_skid_" + std::to_string(skid_count++);
                snk_mod.instances.push_back({skid, skid_mod});

                // Consumer logic now reads the skid's deq side.
                std::map<std::string, std::string> renames;
                renames[vnet.dstPort] = skid + ".deq_valid";
                for (size_t i = 0; i < data_nets.size(); ++i) {
                    renames[plan.nets[data_nets[i]].dstPort] =
                        skid + ".deq_bits" + std::to_string(i);
                }
                for (auto &c : snk_mod.connects)
                    c.rhs = firrtl::renameRefs(c.rhs, renames);

                // The original ready driver becomes the skid's
                // deq_ready; the boundary ready is the skid's
                // enq_ready.
                bool rerouted = false;
                for (auto &c : snk_mod.connects) {
                    if (c.lhs == rnet.srcPort) {
                        c.lhs = skid + ".deq_ready";
                        rerouted = true;
                        break;
                    }
                }
                FIREAXE_ASSERT(rerouted,
                               "no driver for boundary ready ",
                               rnet.srcPort);
                snk_mod.connects.push_back(
                    {rnet.srcPort,
                     firrtl::ref(skid + ".enq_ready", 1)});
                snk_mod.connects.push_back(
                    {skid + ".enq_valid",
                     firrtl::ref(vnet.dstPort, 1)});
                for (size_t i = 0; i < data_nets.size(); ++i) {
                    const BoundaryNet &dnet =
                        plan.nets[data_nets[i]];
                    snk_mod.connects.push_back(
                        {skid + ".enq_bits" + std::to_string(i),
                         firrtl::ref(dnet.dstPort, dnet.width)});
                }
            }
            ++transformed;
        }
    }

    if (transformed > 0) {
        for (auto &pc : plan.partitions)
            firrtl::verifyCircuit(pc);
    }
    return transformed;
}

} // namespace fireaxe::ripper
