/**
 * @file
 * Fast-mode ready-valid boundary transform (Section III-A2, Fig. 3c).
 *
 * Fast-mode seeds each side of the boundary with an initial token,
 * which injects one cycle of latency between the partitions. On a
 * ready-valid interface this breaks backpressure: the source can
 * observe a stale ready and send the same transaction twice, and an
 * in-flight transaction can be dropped when the sink's ready falls.
 *
 * FireRipper repairs this with two target-RTL modifications:
 *  - a skid buffer on the ready-valid *sink* side absorbs in-flight
 *    transactions so none are lost;
 *  - the *source* side's outgoing valid is gated with the (delayed)
 *    incoming ready, so a transaction is only presented when the
 *    handshake can complete, preventing duplicates.
 *
 * The resulting target is no longer cycle-exact with respect to the
 * unmodified RTL, but is cycle-exact with respect to the modified
 * RTL — exactly the fast-mode contract in the paper.
 */

#ifndef FIREAXE_RIPPER_BOUNDARY_HH
#define FIREAXE_RIPPER_BOUNDARY_HH

#include <map>
#include <string>

#include "firrtl/ir.hh"

namespace fireaxe::ripper {

struct PartitionPlan;

/**
 * Apply the ready-valid transform to every annotated bundle whose
 * ports cross a partition boundary in @p plan.
 *
 * @param plan        the plan whose partition circuits are modified
 *                    in place
 * @param target      the original (pre-partitioning) circuit, used to
 *                    look up ReadyValidBundle annotations on the
 *                    extracted instances' modules
 * @param path_group  instance path -> partition index mapping
 * @return the number of bundles transformed
 */
unsigned applyReadyValidTransforms(
    PartitionPlan &plan, const firrtl::Circuit &target,
    const std::map<std::string, int> &path_group);

/**
 * Generate a 2-entry skid-buffer module for the given data-port
 * widths and add it to @p circuit. Ports: enq_valid/enq_ready and
 * enq_bits<i>, deq_valid/deq_ready and deq_bits<i>.
 * Returns the module name.
 */
std::string addSkidBufferModule(firrtl::Circuit &circuit,
                                const std::vector<unsigned> &widths);

} // namespace fireaxe::ripper

#endif // FIREAXE_RIPPER_BOUNDARY_HH
