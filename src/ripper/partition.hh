/**
 * @file
 * FireRipper: FireAxe's partitioning compiler (Section III).
 *
 * Given a target circuit and a PartitionSpec naming the instance
 * subtrees to pull out onto each FPGA, partition() performs the
 * paper's transformation pipeline:
 *
 *  1. Reparent — selected instances are hoisted to the top of the
 *     hierarchy by selectively inlining everything else
 *     (passes::flattenExcept), punching I/O through as it goes.
 *  2. Grouping — each group's instances are wrapped in a fresh
 *     partition module; connections internal to a group move inside.
 *  3. Extract / Remove — the wrapper modules become stand-alone
 *     partition circuits, and the rest of the design becomes the
 *     "rest" partition (partition 0), with boundary ports punched
 *     where the extracted instances used to connect.
 *  4. Boundary analysis — every net crossing partitions is recorded;
 *     pure feedthroughs through the rest partition are shortcut into
 *     direct partition-to-partition nets (so e.g. ring-NoC neighbours
 *     exchange tokens directly, as in Fig. 6).
 *  5. Mode-specific channelization:
 *     - exact-mode: each directed partition pair gets separate
 *       source/sink channels (Fig. 2b), and compilation fails with a
 *       diagnostic chain when the combinational dependency chain
 *       between boundary ports exceeds the supported length (§III-A1);
 *     - fast-mode: one channel per direction, seed tokens at reset,
 *       and the ready-valid boundary transform (skid buffer on the
 *       sink side, valid&ready gating on the source side; Fig. 3c).
 *
 * The result is a PartitionPlan consumed by platform::MultiFpgaSim.
 */

#ifndef FIREAXE_RIPPER_PARTITION_HH
#define FIREAXE_RIPPER_PARTITION_HH

#include <set>
#include <string>
#include <vector>

#include "firrtl/ir.hh"
#include "passes/resources.hh"

namespace fireaxe::ripper {

/** Partitioning mode (Section III-A). */
enum class PartitionMode
{
    /** Cycle-exact; combinational boundary logic allowed up to the
     *  supported dependency-chain length; two link crossings per
     *  target cycle on combinationally-coupled boundaries. */
    Exact,
    /** Cycle-approximate; requires latency-insensitive boundaries;
     *  one link crossing per target cycle (~2x faster). */
    Fast,
};

/** One FPGA partition's worth of extracted instances. */
struct PartitionGroupSpec
{
    std::string name;
    /** Full '/'-separated instance paths from the top module. */
    std::set<std::string> instancePaths;
    /** FAME-5 thread count applied to this partition's model. */
    unsigned fame5Threads = 1;
};

/** User-facing partition request. */
struct PartitionSpec
{
    PartitionMode mode = PartitionMode::Exact;
    std::vector<PartitionGroupSpec> groups;
};

/** One scalar net crossing a partition boundary. */
struct BoundaryNet
{
    unsigned width = 0;
    int srcPart = 0;          ///< producing partition (0 = rest)
    int dstPart = 0;          ///< consuming partition
    std::string srcPort;      ///< port name on the source partition
    std::string dstPort;      ///< port name on the destination
    std::string flatSignal;   ///< originating flat-top signal name
};

/** A planned LI-BDN channel: nets of one direction and class. */
struct ChannelPlan
{
    std::string name;
    int srcPart = 0;
    int dstPart = 0;
    /** True when any net's source port has combinational input
     *  dependencies (sink channel in the paper's terminology). */
    bool sinkClass = false;
    std::vector<int> netIndices;
    unsigned widthBits = 0;
    /** Declared dependencies: names of channels into srcPart whose
     *  input ports this channel's source ports combinationally
     *  depend on. FireRipper derives this from the partition
     *  summaries; the static verifier (src/verify) cross-checks it
     *  against a recomputation. Empty on a sink-class channel means
     *  "unenumerated" (hand-written plans). */
    std::vector<std::string> depChannels;
    /** Token capacity of the transport channel (credits available to
     *  the source before the sink drains). */
    size_t capacity = 16;
    /**
     * Deepest legal token batch (epoch length) on this channel, as
     * determined by the static batching legality pass
     * (analyze::annotateBatchDepths): 1 when the boundary disqualifies
     * depth-N batching (combinationally coupled across partitions,
     * memory-bearing source cone, or oversized shadow state), 0 when
     * the pass has not run. The executor clamps the requested
     * ExecConfig::batchDepth to this per channel.
     */
    unsigned maxBatchDepth = 0;
};

/** Partition feedback (Section III: "quick feedback about the
 *  partition interface and expected simulation performance"). */
struct PartitionFeedback
{
    std::vector<passes::ResourceEstimate> resources; // per partition
    std::vector<unsigned> interfaceWidths;           // per partition
    unsigned maxChannelWidth = 0;
    unsigned linkCrossingsPerCycle = 0; // 2 exact w/ comb, else 1
};

/** The complete partitioning result. */
struct PartitionPlan
{
    PartitionMode mode = PartitionMode::Exact;
    /** Partition circuits; index 0 is the rest-of-SoC partition. */
    std::vector<firrtl::Circuit> partitions;
    std::vector<std::string> partitionNames;
    std::vector<unsigned> fame5Threads;
    std::vector<BoundaryNet> nets;
    std::vector<ChannelPlan> channels;
    PartitionFeedback feedback;

    /** Channels with the given endpoint partitions. */
    std::vector<int> channelsFrom(int src_part) const;
};

/**
 * Run FireRipper. fatal()s with a diagnostic on invalid specs,
 * unsupported combinational dependency chains (exact mode), or
 * non-latency-insensitive boundaries that would deadlock (fast mode
 * without annotations is permitted — correctness is then up to the
 * seed tokens — but backpressure through unannotated ready-valid
 * boundaries will be cycle-inaccurate, as in the paper).
 */
PartitionPlan partition(const firrtl::Circuit &target,
                        const PartitionSpec &spec);

/** Render a human-readable partition report. */
std::string describePlan(const PartitionPlan &plan);

} // namespace fireaxe::ripper

#endif // FIREAXE_RIPPER_PARTITION_HH
