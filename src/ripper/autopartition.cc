#include "ripper/autopartition.hh"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "analyze/cutcost.hh"
#include "base/logging.hh"
#include "passes/combdep.hh"
#include "passes/resources.hh"

namespace fireaxe::ripper {

using firrtl::Circuit;
using firrtl::Module;

namespace {

/** Build the top-level instance affinity graph: pairs of instances
 *  that share a net get affinity proportional to the shared signal
 *  width, so the packer can prefer keeping them together. */
std::map<std::pair<std::string, std::string>, uint64_t>
instanceAffinity(const Circuit &circuit)
{
    const Module &top = circuit.top();
    std::map<std::pair<std::string, std::string>, uint64_t> affinity;

    for (const auto &c : top.connects) {
        std::vector<std::string> ends;
        ends.push_back(c.lhs);
        collectRefs(c.rhs, ends);
        std::set<std::string> insts;
        for (const auto &e : ends) {
            auto [owner, field] = firrtl::splitRef(e);
            if (!owner.empty() && top.findInstance(owner))
                insts.insert(owner);
        }
        unsigned width = c.rhs->width;
        for (auto a = insts.begin(); a != insts.end(); ++a) {
            for (auto b = std::next(a); b != insts.end(); ++b)
                affinity[{*a, *b}] += width;
        }
    }
    return affinity;
}

} // namespace

AutoPartitionResult
autoPartition(const Circuit &target, const AutoPartitionOptions &opts)
{
    FIREAXE_ASSERT(opts.lutBudget > 0 && opts.maxFpgas >= 1);
    const Module &top = target.top();

    // Per-instance resource estimates.
    struct Item
    {
        std::string name;
        uint64_t luts;
    };
    std::vector<Item> items;
    for (const auto &inst : top.instances) {
        auto est =
            passes::estimateResources(target, inst.moduleName);
        items.push_back({inst.name, est.luts});
    }
    // Rest-of-SoC logic (the top module's own wires/regs/memories)
    // stays on partition 0.
    uint64_t rest_luts =
        passes::estimateResources(target).luts;
    for (const auto &item : items)
        rest_luts -= std::min(rest_luts, item.luts);

    for (const auto &item : items) {
        if (item.luts > opts.lutBudget) {
            fatal("autoPartition: instance '", item.name, "' alone "
                  "needs ", item.luts, " LUTs, more than the ",
                  opts.lutBudget, "-LUT per-FPGA budget; ",
                  "partition inside the module instead");
        }
    }

    // First-fit decreasing, scored by the static cut-cost model:
    // place each instance (largest first) into the feasible bin
    // whose trial placement predicts the lowest FMR lower bound
    // (unplaced instances count toward the rest bin, so the score
    // tightens as the placement fills in); ties go to the bin
    // holding the most strongly connected already-placed instances,
    // then to the emptiest bin.
    std::sort(items.begin(), items.end(),
              [](const Item &a, const Item &b) {
                  return a.luts > b.luts;
              });
    auto affinity = instanceAffinity(target);
    passes::CombDepAnalysis deps(target, passes::LoopPolicy::Record);
    analyze::PlacementCostOptions cost_opts;
    cost_opts.link = opts.link;
    cost_opts.hostClockMhz = opts.hostClockMhz;
    cost_opts.mode = opts.mode;

    AutoPartitionResult result;
    result.bins.push_back({{}, rest_luts, 0.0}); // bin 0 = rest

    auto bin_instances = [&result]() {
        std::vector<std::vector<std::string>> bins;
        for (const auto &bin : result.bins)
            bins.push_back(bin.instances);
        return bins;
    };

    std::map<std::string, size_t> placed;
    for (const auto &item : items) {
        size_t best_bin = SIZE_MAX;
        uint64_t best_affinity = 0;
        double best_fmr = 0.0;
        for (size_t b = 0; b < result.bins.size(); ++b) {
            if (result.bins[b].luts + item.luts > opts.lutBudget)
                continue;
            uint64_t score = 0;
            for (const auto &other : result.bins[b].instances) {
                auto key = item.name < other
                               ? std::make_pair(item.name, other)
                               : std::make_pair(other, item.name);
                auto it = affinity.find(key);
                if (it != affinity.end())
                    score += it->second;
            }
            double fmr = 0.0;
            if (opts.costScoring) {
                auto trial = bin_instances();
                trial[b].push_back(item.name);
                fmr = analyze::estimatePlacementCost(
                          target, deps, trial, cost_opts)
                          .predictedFmrLb;
            }
            bool better =
                best_bin == SIZE_MAX || fmr < best_fmr ||
                (fmr == best_fmr &&
                 (score > best_affinity ||
                  (score == best_affinity &&
                   result.bins[b].luts <
                       result.bins[best_bin].luts)));
            if (better) {
                best_bin = b;
                best_affinity = score;
                best_fmr = fmr;
            }
        }
        if (best_bin == SIZE_MAX) {
            if (result.bins.size() >= opts.maxFpgas) {
                fatal("autoPartition: design needs more than ",
                      opts.maxFpgas, " FPGAs at ", opts.lutBudget,
                      " LUTs each");
            }
            result.bins.push_back({});
            best_bin = result.bins.size() - 1;
        }
        result.bins[best_bin].instances.push_back(item.name);
        result.bins[best_bin].luts += item.luts;
        placed[item.name] = best_bin;
    }

    result.fpgasUsed = unsigned(result.bins.size());
    result.fits = true;
    for (auto &bin : result.bins) {
        bin.utilization = double(bin.luts) / double(opts.lutBudget);
        if (bin.luts > opts.lutBudget)
            result.fits = false;
    }
    if (result.bins.size() > 1)
        result.predictedFmrLb =
            analyze::estimatePlacementCost(target, deps,
                                           bin_instances(), cost_opts)
                .predictedFmrLb;

    result.spec.mode = opts.mode;
    for (size_t b = 1; b < result.bins.size(); ++b) {
        PartitionGroupSpec group;
        group.name = "auto" + std::to_string(b);
        group.instancePaths.insert(result.bins[b].instances.begin(),
                                   result.bins[b].instances.end());
        result.spec.groups.push_back(std::move(group));
    }
    return result;
}

std::string
describeAutoPartition(const AutoPartitionResult &result)
{
    std::ostringstream os;
    os << "automatic placement onto " << result.fpgasUsed
       << " FPGA(s)" << (result.fits ? "" : " [OVER BUDGET]")
       << ":\n";
    for (size_t b = 0; b < result.bins.size(); ++b) {
        const auto &bin = result.bins[b];
        os << "  fpga" << b << (b == 0 ? " (rest)" : "") << ": "
           << bin.luts << " LUTs ("
           << unsigned(bin.utilization * 100.0) << "%)";
        for (const auto &inst : bin.instances)
            os << " " << inst;
        os << "\n";
    }
    if (result.fpgasUsed > 1) {
        os << "  predicted FMR lower bound (cut-cost model): ";
        os.precision(2);
        os.setf(std::ios::fixed);
        os << result.predictedFmrLb << "\n";
    }
    return os.str();
}

} // namespace fireaxe::ripper
