#include "ripper/nocselect.hh"

#include <deque>
#include <functional>
#include <map>

#include "base/logging.hh"

namespace fireaxe::ripper {

using firrtl::Circuit;
using firrtl::Module;
using firrtl::splitRef;

std::vector<NocRouterInfo>
findNocRouters(const Circuit &circuit)
{
    std::vector<NocRouterInfo> routers;

    std::function<void(const Module &, const std::string &)> walk =
        [&](const Module &mod, const std::string &path) {
            for (const auto &inst : mod.instances) {
                const Module *child =
                    circuit.findModule(inst.moduleName);
                FIREAXE_ASSERT(child);
                std::string child_path =
                    path.empty() ? inst.name : path + "/" + inst.name;
                if (child->hasAttr("nocRouter")) {
                    unsigned index = unsigned(
                        std::stoul(child->attrs.at("nocIndex")));
                    routers.push_back({child_path, index, path});
                }
                walk(*child, child_path);
            }
        };
    walk(circuit.top(), "");
    return routers;
}

namespace {

/** Union-find over strings (wire names). */
class UnionFind
{
  public:
    std::string
    find(const std::string &x)
    {
        auto it = parent_.find(x);
        if (it == parent_.end()) {
            parent_[x] = x;
            return x;
        }
        if (it->second == x)
            return x;
        std::string root = find(it->second);
        parent_[x] = root;
        return root;
    }

    void
    unite(const std::string &a, const std::string &b)
    {
        parent_[find(a)] = find(b);
    }

  private:
    std::map<std::string, std::string> parent_;
};

} // namespace

std::set<std::string>
selectNocGroup(const Circuit &circuit,
               const std::set<unsigned> &indices)
{
    if (indices.empty())
        fatal("NoC-partition-mode: empty router index set");

    auto routers = findNocRouters(circuit);
    if (routers.empty())
        fatal("NoC-partition-mode: design contains no router nodes "
              "(missing nocRouter attributes)");

    // Selected routers must share one enclosing module so the
    // connectivity traversal happens in a single namespace.
    std::string parent_path;
    std::map<unsigned, const NocRouterInfo *> by_index;
    for (const auto &r : routers)
        by_index[r.index] = &r;
    bool first = true;
    std::set<std::string> selected_router_names;
    std::set<std::string> all_router_names;
    for (const auto &r : routers) {
        auto slash = r.path.rfind('/');
        std::string local =
            slash == std::string::npos ? r.path
                                       : r.path.substr(slash + 1);
        all_router_names.insert(local);
    }
    for (unsigned idx : indices) {
        auto it = by_index.find(idx);
        if (it == by_index.end())
            fatal("NoC-partition-mode: no router with index ", idx);
        const NocRouterInfo &r = *it->second;
        if (first) {
            parent_path = r.parentPath;
            first = false;
        } else if (parent_path != r.parentPath) {
            fatal("NoC-partition-mode: selected routers live in "
                  "different modules ('", parent_path, "' vs '",
                  r.parentPath, "')");
        }
        auto slash = r.path.rfind('/');
        selected_router_names.insert(
            slash == std::string::npos ? r.path
                                       : r.path.substr(slash + 1));
    }

    // Locate the enclosing module.
    const Module *parent = &circuit.top();
    if (!parent_path.empty()) {
        const Module *cur = &circuit.top();
        std::string remaining = parent_path;
        while (!remaining.empty()) {
            auto slash = remaining.find('/');
            std::string head = slash == std::string::npos
                                   ? remaining
                                   : remaining.substr(0, slash);
            remaining = slash == std::string::npos
                            ? ""
                            : remaining.substr(slash + 1);
            const firrtl::Instance *inst = cur->findInstance(head);
            FIREAXE_ASSERT(inst, "bad parent path ", parent_path);
            cur = circuit.findModule(inst->moduleName);
        }
        parent = cur;
    }

    // Build instance adjacency through wire nets. Wires on one net
    // are unified; instances touching a net are mutually adjacent.
    // Direct instance-to-instance connects add edges as well.
    // Registers, memories and ports anchor nets to the parent module
    // itself and do not create instance adjacency.
    UnionFind nets;
    std::map<std::string, std::set<std::string>> net_insts;
    std::set<std::string> net_anchored;
    std::map<std::string, std::set<std::string>> direct_adj;

    auto classify = [&](const std::string &ref_name)
        -> std::pair<char, std::string> {
        auto [owner, field] = splitRef(ref_name);
        if (!owner.empty()) {
            if (parent->findInstance(owner))
                return {'i', owner};
            return {'x', ""}; // memory port: module-anchored
        }
        if (parent->findWire(field))
            return {'w', field};
        return {'x', ""}; // port / register: module-anchored
    };

    for (const auto &c : parent->connects) {
        std::vector<std::string> ends;
        ends.push_back(c.lhs);
        collectRefs(c.rhs, ends);

        std::vector<std::string> wires;
        std::vector<std::string> insts;
        bool anchored = false;
        for (const auto &e : ends) {
            auto [kind, name] = classify(e);
            if (kind == 'w')
                wires.push_back(name);
            else if (kind == 'i')
                insts.push_back(name);
            else
                anchored = true;
        }
        if (!wires.empty()) {
            for (size_t i = 1; i < wires.size(); ++i)
                nets.unite(wires[0], wires[i]);
            for (const auto &inst : insts)
                net_insts[wires[0]].insert(inst);
            if (anchored)
                net_anchored.insert(wires[0]);
        } else if (!anchored) {
            // Point-to-point instance connections. Connects that
            // also touch the parent's own logic (ports, registers,
            // memories) — e.g. a status-aggregation XOR over every
            // tile — are module-level observation, not structural
            // adjacency, and are skipped.
            for (size_t i = 0; i < insts.size(); ++i)
                for (size_t j = i + 1; j < insts.size(); ++j) {
                    direct_adj[insts[i]].insert(insts[j]);
                    direct_adj[insts[j]].insert(insts[i]);
                }
        }
    }

    // Collapse per-net instance sets onto net roots; anchored nets
    // do not create adjacency (see above).
    std::map<std::string, std::set<std::string>> root_insts;
    std::set<std::string> root_anchored;
    for (const auto &wire : net_anchored)
        root_anchored.insert(nets.find(wire));
    for (auto &[wire, insts] : net_insts) {
        auto &bucket = root_insts[nets.find(wire)];
        bucket.insert(insts.begin(), insts.end());
    }
    std::map<std::string, std::set<std::string>> adj = direct_adj;
    for (const auto &[root, insts] : root_insts) {
        if (root_anchored.count(root))
            continue;
        for (const auto &a : insts)
            for (const auto &b : insts)
                if (a != b)
                    adj[a].insert(b);
    }

    // BFS from the selected routers; unselected routers are walls.
    std::set<std::string> group = selected_router_names;
    std::deque<std::string> work(selected_router_names.begin(),
                                 selected_router_names.end());
    while (!work.empty()) {
        std::string cur = work.front();
        work.pop_front();
        for (const auto &next : adj[cur]) {
            if (group.count(next))
                continue;
            if (all_router_names.count(next) &&
                !selected_router_names.count(next)) {
                continue; // do not cross other routers
            }
            group.insert(next);
            work.push_back(next);
        }
    }

    // Prefix with the parent path to obtain full instance paths.
    std::set<std::string> paths;
    for (const auto &name : group) {
        paths.insert(parent_path.empty() ? name
                                         : parent_path + "/" + name);
    }
    return paths;
}

} // namespace fireaxe::ripper
