#include "nic/leaky_dma.hh"

#include <deque>
#include <vector>

#include "base/bits.hh"
#include "base/logging.hh"
#include "base/random.hh"

namespace fireaxe::nic {

using mem::AccessResult;
using mem::WayClass;
using mem::WayPartitionedCache;

namespace {

/** A packet moving through the RX -> core -> TX pipeline. */
struct Packet
{
    unsigned core;
    unsigned desc;
    double readyAt; // earliest time the next stage may touch it
};

/**
 * The experiment is a discrete-event simulation of three agent
 * classes sharing the LLC and the interconnect: the NIC RX DMA
 * engine, the forwarding cores, and the NIC TX DMA engine. Each
 * event is one cache-line bus transaction; the global event loop
 * always advances the agent with the earliest next transaction so
 * that cache state and interconnect queueing see accesses in true
 * time order — which is exactly what creates the leaky-DMA effect
 * (other cores' packets evict yours between your write and read).
 */
class LeakyDmaSim
{
  public:
    explicit LeakyDmaSim(const LeakyDmaConfig &cfg)
        : cfg_(cfg), llc_(cfg.llc),
          linesPerPkt_(
              unsigned(ceilDiv(cfg.packetBytes, cfg.llc.lineBytes))),
          n_(cfg.forwardingCores), coreTime_(n_, 0.0),
          coreQ_(n_), coreLine_(n_, 0), corePhase_(n_, 0),
          inflight_(n_, 0),
          descIndex_(n_, 0), rng_(0xd1a5 + n_)
    {
        if (cfg.topology == Topology::Crossbar) {
            // A central crossbar's arbitration and wiring cost grows
            // with its radix: every active requester lengthens the
            // grant path and widens the muxes, so the per-transaction
            // service time scales with the attached core count. This
            // is the "bus contention" component of Fig. 9 that makes
            // the XBar write latency climb much faster than the
            // ring's beyond ~6 cores.
            double svc =
                cfg.xbarServiceNs * (1.0 + 0.35 * (n_ + 2));
            net_ = std::make_unique<mem::CrossbarBus>(
                svc, cfg.xbarBaseNs);
        } else {
            net_ = std::make_unique<mem::RingNoc>(
                cfg.ringLinks, cfg.ringServiceNs, cfg.ringHopNs);
        }
        dram_ = std::make_unique<mem::CrossbarBus>(
            cfg.dramServiceNs, cfg.dramBaseNs);

        double interval = cfg.perCorePacketIntervalNs / n_;
        for (unsigned p = 0; p < cfg.packets; ++p) {
            Packet pkt;
            pkt.core = p % n_;
            pkt.desc = 0; // assigned when admitted
            pkt.readyAt = p * interval + rng_.uniform() * 2.0;
            arrivals_.push_back(pkt);
        }
    }

    LeakyDmaResult
    run()
    {
        while (step()) {
        }
        LeakyDmaResult result;
        result.topology = net_->name();
        result.forwardingCores = n_;
        result.avgReadLatencyNs = rdLat_.mean();
        result.avgWriteLatencyNs = wrLat_.mean();
        uint64_t total = llc_.hits() + llc_.misses();
        result.llcMissRate =
            total ? double(llc_.misses()) / double(total) : 0.0;
        return result;
    }

  private:
    uint64_t
    rxAddr(unsigned core, unsigned desc, unsigned line) const
    {
        return (uint64_t(core + 1) << 24) +
               (uint64_t(desc) * linesPerPkt_ + line) *
                   cfg_.llc.lineBytes;
    }

    uint64_t
    txAddr(unsigned core, unsigned desc, unsigned line) const
    {
        return (uint64_t(core + 1) << 24) + (uint64_t(1) << 23) +
               (uint64_t(desc) * linesPerPkt_ + line) *
                   cfg_.llc.lineBytes;
    }

    /**
     * Completion time of the cache-side part of a transaction that
     * reached the LLC at @p t. Read misses block on a DRAM fill;
     * dirty evictions push into the writeback buffer and stall the
     * allocation when the buffer is full.
     */
    double
    llcTime(const AccessResult &res, bool write, double t)
    {
        double done = t + cfg_.llcHitNs;
        if (!write && !res.hit)
            done = dram_->serve(t) + 0.0; // blocking miss fill
        if (res.writeback) {
            while (!wbBuffer_.empty() && wbBuffer_.front() <= done)
                wbBuffer_.pop_front();
            if (wbBuffer_.size() >= cfg_.wbBufferDepth) {
                done = std::max(done, wbBuffer_.front());
                wbBuffer_.pop_front();
            }
            wbBuffer_.push_back(dram_->serve(done));
            done += cfg_.writebackNs;
        }
        return done;
    }

    /** Next-action time of each agent; infinity when idle. */
    static constexpr double idle = 1e300;

    double
    rxNext() const
    {
        if (rxHead_ >= arrivals_.size())
            return idle;
        const Packet &pkt = arrivals_[rxHead_];
        if (inflight_[pkt.core] >= cfg_.descQueueEntries)
            return idle; // blocked until a TX completion frees a slot
        return std::max({rxTime_, pkt.readyAt, rxEligible_});
    }

    double
    coreNext(unsigned k) const
    {
        if (coreQ_[k].empty())
            return idle;
        return std::max(coreTime_[k], coreQ_[k].front().readyAt);
    }

    double
    txNext() const
    {
        if (txQ_.empty())
            return idle;
        return std::max(txTime_, txQ_.front().readyAt);
    }

    /** Execute the earliest pending line transaction. */
    bool
    step()
    {
        // Select the agent with the earliest next action.
        enum class Agent { Rx, Core, Tx, None } who = Agent::None;
        unsigned core_sel = 0;
        double best = idle;
        if (rxNext() < best) {
            best = rxNext();
            who = Agent::Rx;
        }
        for (unsigned k = 0; k < n_; ++k) {
            if (coreNext(k) < best) {
                best = coreNext(k);
                who = Agent::Core;
                core_sel = k;
            }
        }
        if (txNext() < best) {
            best = txNext();
            who = Agent::Tx;
        }
        if (who == Agent::None)
            return false;

        switch (who) {
          case Agent::Rx: {
            Packet &pkt = arrivals_[rxHead_];
            if (rxLine_ == 0) {
                pkt.desc = descIndex_[pkt.core];
                descIndex_[pkt.core] =
                    (pkt.desc + 1) % cfg_.descQueueEntries;
                ++inflight_[pkt.core];
            }
            double t0 = best;
            double t = net_->serve(t0);
            AccessResult res =
                llc_.access(rxAddr(pkt.core, pkt.desc, rxLine_),
                            true, WayClass::Io, uint64_t(t));
            t = llcTime(res, true, t);
            wrLat_.sample(t - t0);
            rxTime_ = t;
            if (++rxLine_ == linesPerPkt_) {
                rxLine_ = 0;
                Packet next = pkt;
                next.readyAt = t;
                coreQ_[pkt.core].push_back(next);
                ++rxHead_;
            }
            break;
          }
          case Agent::Core: {
            // Each line is two separate events (read RX, then write
            // TX) so every interconnect reservation happens at the
            // globally-earliest pending time.
            Packet &pkt = coreQ_[core_sel].front();
            unsigned line = coreLine_[core_sel];
            double t = net_->serve(best);
            if (corePhase_[core_sel] == 0) {
                AccessResult rd =
                    llc_.access(rxAddr(pkt.core, pkt.desc, line),
                                false, WayClass::Core, uint64_t(t));
                t = llcTime(rd, false, t) + cfg_.coreLineNs;
                coreTime_[core_sel] = t;
                corePhase_[core_sel] = 1;
            } else {
                AccessResult wr =
                    llc_.access(txAddr(pkt.core, pkt.desc, line),
                                true, WayClass::Core, uint64_t(t));
                t = llcTime(wr, true, t);
                coreTime_[core_sel] = t;
                corePhase_[core_sel] = 0;
                if (++coreLine_[core_sel] == linesPerPkt_) {
                    coreLine_[core_sel] = 0;
                    Packet next = pkt;
                    next.readyAt = t;
                    txQ_.push_back(next);
                    coreQ_[core_sel].pop_front();
                }
            }
            break;
          }
          case Agent::Tx: {
            Packet &pkt = txQ_.front();
            double t0 = best;
            double t = net_->serve(t0);
            AccessResult res =
                llc_.access(txAddr(pkt.core, pkt.desc, txLine_),
                            false, WayClass::Io, uint64_t(t));
            t = llcTime(res, false, t);
            rdLat_.sample(t - t0);
            txTime_ = t;
            if (++txLine_ == linesPerPkt_) {
                txLine_ = 0;
                // If this completion unblocks the RX engine, the
                // admission happens now, not at the stale arrival
                // timestamp.
                bool unblocks =
                    rxHead_ < arrivals_.size() &&
                    arrivals_[rxHead_].core == pkt.core &&
                    inflight_[pkt.core] >= cfg_.descQueueEntries;
                --inflight_[pkt.core];
                if (unblocks)
                    rxEligible_ = std::max(rxEligible_, t);
                txQ_.pop_front();
            }
            break;
          }
          case Agent::None:
            break;
        }
        return true;
    }

    LeakyDmaConfig cfg_;
    WayPartitionedCache llc_;
    std::unique_ptr<mem::Interconnect> net_;
    std::unique_ptr<mem::CrossbarBus> dram_;
    std::deque<double> wbBuffer_;
    unsigned linesPerPkt_;
    unsigned n_;

    std::vector<Packet> arrivals_;
    size_t rxHead_ = 0;
    unsigned rxLine_ = 0;
    double rxTime_ = 0.0;
    double rxEligible_ = 0.0;

    std::vector<double> coreTime_;
    std::vector<std::deque<Packet>> coreQ_;
    std::vector<unsigned> coreLine_;
    std::vector<unsigned> corePhase_;

    std::deque<Packet> txQ_;
    unsigned txLine_ = 0;
    double txTime_ = 0.0;

    std::vector<unsigned> inflight_;
    std::vector<unsigned> descIndex_;

    RunningStat rdLat_, wrLat_;
    Rng rng_;
};

} // namespace

LeakyDmaResult
runLeakyDma(const LeakyDmaConfig &cfg)
{
    FIREAXE_ASSERT(cfg.forwardingCores >= 1 &&
                   cfg.forwardingCores <= cfg.totalCores);
    LeakyDmaSim sim(cfg);
    return sim.run();
}

} // namespace fireaxe::nic
