/**
 * @file
 * The leaky-DMA experiment (Section V-C, Fig. 9).
 *
 * A client drives the server's NIC with 1500-byte packets; each of
 * the server's forwarding cores owns a 128-entry RX/TX descriptor
 * queue pair (the paper's per-core-queue NIC modification). The NIC
 * DMA-writes incoming packets into the LLC's DDIO ways, the owning
 * core reads and re-writes the payload, and the NIC reads the TX
 * packet back out. Hardware counters in the NIC record the average
 * request-to-response latency of every bus transaction — the read
 * latency (NIC reading TX packets from the L2) and the write latency
 * (NIC writing RX packets into the L2) reported in Fig. 9.
 *
 * Scaling the number of forwarding cores scales the packet-buffer
 * footprint; once it exceeds the 2 DDIO ways of the 128 kB LLC,
 * incoming DMA evicts unconsumed packet lines and latencies climb
 * (cache contention), with the crossbar's single arbitration point
 * additionally saturating past ~6 cores while the ring NoC degrades
 * gracefully.
 */

#ifndef FIREAXE_NIC_LEAKY_DMA_HH
#define FIREAXE_NIC_LEAKY_DMA_HH

#include <memory>
#include <string>

#include "base/stats.hh"
#include "mem/cache.hh"
#include "mem/interconnect.hh"

namespace fireaxe::nic {

/** Interconnect topology under test. */
enum class Topology { Crossbar, Ring };

/** Experiment parameters (paper defaults). */
struct LeakyDmaConfig
{
    unsigned totalCores = 12;
    unsigned forwardingCores = 12;
    Topology topology = Topology::Crossbar;
    unsigned packetBytes = 1500;
    unsigned descQueueEntries = 128;
    mem::CacheConfig llc = {};      // 128 kB, 8 ways, 2 DDIO ways
    double llcHitNs = 10.0;
    double dramNs = 62.0;
    double writebackNs = 10.0;
    /** Per-forwarding-core offered packet interval (ns). */
    double perCorePacketIntervalNs = 2000.0;
    /** Core per-line processing time (ns). */
    double coreLineNs = 7.0;
    unsigned packets = 6000;

    // Interconnect timing (see mem/interconnect.hh).
    double xbarServiceNs = 3.0;
    double xbarBaseNs = 4.0;
    double ringServiceNs = 1.4;
    double ringHopNs = 22.0;
    unsigned ringLinks = 4;

    // DRAM behind the LLC: a bandwidth-limited channel serving miss
    // fills and draining a bounded writeback buffer. Under leaky-DMA
    // thrash the channel congests and every transaction's latency
    // climbs.
    double dramServiceNs = 1.2;
    double dramBaseNs = 45.0;
    unsigned wbBufferDepth = 8;
};

/** Measured results (per bus transaction, averaged). */
struct LeakyDmaResult
{
    std::string topology;
    unsigned forwardingCores = 0;
    double avgReadLatencyNs = 0.0;  ///< NIC reading TX from L2
    double avgWriteLatencyNs = 0.0; ///< NIC writing RX into L2
    double llcMissRate = 0.0;
};

/** Run the experiment. Deterministic. */
LeakyDmaResult runLeakyDma(const LeakyDmaConfig &cfg);

} // namespace fireaxe::nic

#endif // FIREAXE_NIC_LEAKY_DMA_HH
