/**
 * @file
 * NoC-partition-mode: the Fig. 6 recipe at example scale.
 *
 * Builds a ring-NoC SoC (Constellation-style routers, protocol
 * converters, core tiles, one subsystem node), asks FireRipper to
 * grow partition groups from router node indices, and co-simulates
 * the ring across five FPGAs. Each FPGA exchanges tokens only with
 * its ring neighbours; the tile partitions are FAME-5 threaded like
 * the 24-core case study.
 */

#include <iostream>
#include <vector>

#include "platform/executor.hh"
#include "platform/fpga.hh"
#include "ripper/nocselect.hh"
#include "ripper/partition.hh"
#include "target/noc_soc.hh"
#include "transport/link.hh"

using namespace fireaxe;

int
main()
{
    // A 9-node ring: node 0 carries the SoC subsystem, nodes 1..8
    // carry one core tile each.
    target::RingNocSocConfig cfg;
    cfg.numNodes = 9;
    cfg.memWords = 512;
    auto soc = target::buildRingNocSoc(cfg);

    // Discover the routers, then let NoC-partition-mode grow a
    // wrapper around two routers per FPGA (Fig. 4's algorithm).
    auto routers = ripper::findNocRouters(soc);
    std::cout << "design contains " << routers.size()
              << " NoC routers\n";

    ripper::PartitionSpec spec;
    spec.mode = ripper::PartitionMode::Exact;
    for (unsigned g = 0; g < 4; ++g) {
        std::set<unsigned> indices = {1 + g * 2, 2 + g * 2};
        ripper::PartitionGroupSpec group;
        group.name = "nodes" + std::to_string(g);
        group.instancePaths = ripper::selectNocGroup(soc, indices);
        group.fame5Threads = 2; // two identical tiles per FPGA
        std::cout << "group " << group.name << ":";
        for (const auto &path : group.instancePaths)
            std::cout << " " << path;
        std::cout << "\n";
        spec.groups.push_back(group);
    }

    auto plan = ripper::partition(soc, spec);
    std::cout << "\n" << ripper::describePlan(plan) << "\n";

    // Golden monolithic run for validation.
    const uint64_t cycles = 600;
    std::vector<uint64_t> golden;
    platform::runMonolithic(
        soc, nullptr,
        [&](rtlsim::Simulator &sim, unsigned, uint64_t) {
            golden.push_back(sim.peek("status"));
        },
        cycles);

    platform::MultiFpgaSim sim(
        plan,
        std::vector<platform::FpgaSpec>(5, platform::alveoU250(30.0)),
        transport::qsfpAurora());
    std::vector<uint64_t> partitioned;
    sim.setMonitor(0, [&](rtlsim::Simulator &s, unsigned, uint64_t) {
        partitioned.push_back(s.peek("status"));
    });
    auto result = sim.run(cycles);

    uint64_t mismatches = 0;
    for (size_t i = 0; i < golden.size(); ++i)
        mismatches += partitioned[i] != golden[i];

    std::cout << "5-FPGA ring simulated " << result.targetCycles
              << " cycles at " << result.simRateMhz()
              << " MHz with " << mismatches
              << " divergences vs monolithic\n";
    return mismatches == 0 && !result.deadlocked ? 0 : 1;
}
