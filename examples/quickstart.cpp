/**
 * @file
 * Quickstart: partition a small design across two simulated FPGAs
 * and verify cycle-exactness against the monolithic simulation.
 *
 * Walks the core FireAxe flow end to end:
 *   1. build a target circuit (the paper's Fig. 2 example — two
 *      blocks whose boundary contains combinational logic);
 *   2. run FireRipper in exact-mode to extract one block onto its
 *      own FPGA partition, printing the partition report;
 *   3. co-simulate both partitions over a QSFP link model;
 *   4. compare every cycle's observable output with a monolithic
 *      golden run.
 */

#include <iostream>
#include <vector>

#include "platform/executor.hh"
#include "platform/fpga.hh"
#include "ripper/partition.hh"
#include "target/paper_examples.hh"
#include "transport/link.hh"

using namespace fireaxe;

int
main()
{
    // 1. The target design.
    firrtl::Circuit target = target::buildFig2Target();

    // 2. FireRipper: pull blockB onto its own FPGA, exact-mode.
    ripper::PartitionSpec spec;
    spec.mode = ripper::PartitionMode::Exact;
    spec.groups.push_back({"blockB", {"blockB"}, 1});
    ripper::PartitionPlan plan = ripper::partition(target, spec);
    std::cout << ripper::describePlan(plan) << "\n";

    // 3. Golden reference: monolithic simulation.
    const uint64_t cycles = 1000;
    std::vector<uint64_t> golden;
    platform::runMonolithic(
        target, nullptr,
        [&](rtlsim::Simulator &sim, unsigned, uint64_t) {
            golden.push_back(sim.peek("obs_a"));
        },
        cycles);

    // 4. Partitioned co-simulation on two modeled U250s over QSFP.
    platform::MultiFpgaSim sim(
        plan,
        {platform::alveoU250(50.0), platform::alveoU250(50.0)},
        transport::qsfpAurora());
    std::vector<uint64_t> partitioned;
    sim.setMonitor(0, [&](rtlsim::Simulator &s, unsigned, uint64_t) {
        partitioned.push_back(s.peek("obs_a"));
    });
    auto result = sim.run(cycles);

    uint64_t divergences = 0;
    for (size_t i = 0; i < golden.size(); ++i)
        if (partitioned[i] != golden[i])
            ++divergences;

    std::cout << "simulated " << result.targetCycles
              << " target cycles at "
              << result.simRateMhz() << " MHz\n"
              << "cycle-by-cycle divergences vs monolithic: "
              << divergences << "\n"
              << (divergences == 0 ? "exact-mode is cycle-exact!"
                                   : "ERROR: mismatch")
              << std::endl;
    return divergences == 0 ? 0 : 1;
}
