/**
 * @file
 * Splitting a core that does not fit on one FPGA (§V-B at example
 * scale): the backend (rename/PRF/execution/LSU) goes to one FPGA,
 * the frontend (fetch/branch-prediction/fetch-buffer) plus the
 * memory subsystem stays on the other, in exact-mode across a
 * combinational fetch-acknowledge boundary.
 */

#include <iostream>
#include <vector>

#include "passes/resources.hh"
#include "platform/executor.hh"
#include "platform/fpga.hh"
#include "ripper/partition.hh"
#include "target/big_core.hh"
#include "transport/link.hh"

using namespace fireaxe;

int
main()
{
    // Example-scale core (the full GC40 configuration is exercised
    // by bench_sec5b_splitcore).
    target::BigCoreConfig cfg;
    cfg.fetchWidth = 4;
    cfg.fieldsPerInst = 4;
    cfg.traceWords = 8;
    cfg.lsuWords = 4;
    cfg.backendLanes = 32;
    cfg.frontendLanes = 8;
    auto core = target::buildBigCore(cfg);

    std::cout << "partition interface: "
              << target::bigCoreInterfaceBits(cfg) << " bits\n";
    auto backend = passes::estimateResources(core, "BigCoreBackend");
    auto frontend =
        passes::estimateResources(core, "BigCoreFrontend");
    std::cout << "backend:  " << backend.luts << " LUTs, "
              << backend.flipFlops << " FFs\n";
    std::cout << "frontend: " << frontend.luts << " LUTs, "
              << frontend.flipFlops << " FFs\n";

    ripper::PartitionSpec spec;
    spec.mode = ripper::PartitionMode::Exact;
    spec.groups.push_back({"backend", {"backend"}, 1});
    auto plan = ripper::partition(core, spec);
    std::cout << ripper::describePlan(plan) << "\n";

    const uint64_t cycles = 500;
    std::vector<uint64_t> golden;
    platform::runMonolithic(
        core, nullptr,
        [&](rtlsim::Simulator &sim, unsigned, uint64_t) {
            golden.push_back(sim.peek("status"));
        },
        cycles);

    platform::MultiFpgaSim sim(
        plan,
        {platform::alveoU250(10.0), platform::alveoU250(10.0)},
        transport::qsfpAurora());
    std::vector<uint64_t> partitioned;
    sim.setMonitor(0, [&](rtlsim::Simulator &s, unsigned, uint64_t) {
        partitioned.push_back(s.peek("status"));
    });
    auto result = sim.run(cycles);

    uint64_t mismatches = 0;
    for (size_t i = 0; i < golden.size(); ++i)
        mismatches += partitioned[i] != golden[i];

    std::cout << "split core simulated " << result.targetCycles
              << " cycles at " << result.simRateMhz()
              << " MHz; divergences vs monolithic: " << mismatches
              << "\n";
    return mismatches == 0 ? 0 : 1;
}
