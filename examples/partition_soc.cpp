/**
 * @file
 * Partitioning a multi-tile SoC: exact-mode vs fast-mode.
 *
 * Builds a bus-based SoC with four core tiles, extracts two tiles
 * onto a second FPGA in both partitioning modes, and compares:
 *  - the partition interface report (source/sink channel split in
 *    exact-mode vs the single seeded channel pair of fast-mode, with
 *    the ready-valid skid-buffer transform applied);
 *  - functional equivalence (exact) / bounded approximation (fast);
 *  - the achieved simulation rate (fast-mode ~2x).
 */

#include <iostream>
#include <vector>

#include "platform/executor.hh"
#include "platform/fpga.hh"
#include "ripper/partition.hh"
#include "target/bus_soc.hh"
#include "transport/link.hh"

using namespace fireaxe;

namespace {

struct RunOutcome
{
    std::vector<uint64_t> status;
    double rateMhz;
};

RunOutcome
runPartitioned(const firrtl::Circuit &soc, ripper::PartitionMode mode,
               uint64_t cycles)
{
    ripper::PartitionSpec spec;
    spec.mode = mode;
    spec.groups.push_back(
        {"tiles", target::busSocTilePaths(2), 1});
    auto plan = ripper::partition(soc, spec);
    std::cout << ripper::describePlan(plan) << "\n";

    platform::MultiFpgaSim sim(
        plan,
        {platform::alveoU250(50.0), platform::alveoU250(50.0)},
        transport::qsfpAurora());
    sim.checkFit(true);

    RunOutcome out;
    sim.setMonitor(0, [&](rtlsim::Simulator &s, unsigned, uint64_t) {
        out.status.push_back(s.peek("status"));
    });
    auto result = sim.run(cycles);
    out.rateMhz = result.simRateMhz();
    return out;
}

} // namespace

int
main()
{
    target::BusSocConfig cfg;
    cfg.numTiles = 4;
    cfg.memWords = 256;
    auto soc = target::buildBusSoc(cfg);
    const uint64_t cycles = 800;

    std::vector<uint64_t> golden;
    platform::runMonolithic(
        soc, nullptr,
        [&](rtlsim::Simulator &sim, unsigned, uint64_t) {
            golden.push_back(sim.peek("status"));
        },
        cycles);

    std::cout << "--- exact-mode ---\n";
    auto exact = runPartitioned(soc, ripper::PartitionMode::Exact,
                                cycles);
    uint64_t exact_mismatch = 0;
    for (size_t i = 0; i < golden.size(); ++i)
        exact_mismatch += exact.status[i] != golden[i];

    std::cout << "--- fast-mode ---\n";
    auto fast = runPartitioned(soc, ripper::PartitionMode::Fast,
                               cycles);
    uint64_t fast_mismatch = 0;
    for (size_t i = 0; i < golden.size(); ++i)
        fast_mismatch += fast.status[i] != golden[i];

    std::cout << "exact-mode: " << exact.rateMhz << " MHz, "
              << exact_mismatch << " per-cycle mismatches "
              << "(must be 0)\n";
    std::cout << "fast-mode:  " << fast.rateMhz << " MHz ("
              << fast.rateMhz / exact.rateMhz << "x), "
              << fast_mismatch
              << " per-cycle mismatches (cycle-approximate: "
              << "values shifted by the injected boundary "
              << "latency)\n";
    return exact_mismatch == 0 ? 0 : 1;
}
