/**
 * @file
 * Figure 11: QSFP performance sweeps. Simulation rate of a bus SoC
 * with its core tiles partitioned onto a second FPGA over QSFP
 * direct-attach cables, against partition-interface width (varied by
 * the number/width of extracted tiles), bitstream frequency, and
 * partitioning mode.
 *
 * Expected shape (paper §VI-A1): exact-mode is dominated by crossing
 * the link twice per cycle and stays relatively flat with width;
 * fast-mode is ~2x faster until the interface exceeds ~1500 bits,
 * where (de)serialization becomes comparable to the link latency and
 * the gap closes. Higher bitstream frequencies help throughout.
 *
 * The final table is the ablation companion: the closed-form rate
 * model against the executed-mechanics numbers.
 */

#include <iostream>

#include "base/table.hh"
#include "sweep_common.hh"

using namespace fireaxe;
using namespace fireaxe::bench;
using ripper::PartitionMode;

namespace {

struct WidthStep
{
    unsigned tilesOut;
    unsigned traceWords;
};

// Tile count / trace-word combinations giving a rising boundary
// width, the x-axis of Fig. 11.
const WidthStep widthSteps[] = {
    {1, 0}, {2, 0}, {4, 0}, {4, 2}, {4, 6}, {4, 12}, {4, 24},
};

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    JsonRows json(args.jsonPath);

    auto link = transport::qsfpAurora();
    const unsigned total_tiles = 4;
    const uint64_t cycles = args.cycles ? args.cycles : 400;
    // --snapshot-every/--snapshot-dir make every measured run carry
    // the autosnapshot machinery, so its rate tax shows up in the
    // sweep itself.
    platform::ExecConfig exec_cfg;
    args.applyRecovery(exec_cfg);
    const platform::ExecConfig *exec =
        args.snapshotEvery ? &exec_cfg : nullptr;

    for (double mhz : {10.0, 30.0, 50.0, 70.0, 90.0}) {
        TextTable table({"interface (bits)", "exact (MHz)",
                         "fast (MHz)", "fast/exact"});
        for (const auto &step : widthSteps) {
            auto exact = runTilePartitionSweep(
                total_tiles, step.tilesOut, step.traceWords,
                PartitionMode::Exact, link, mhz, cycles, exec);
            auto fast = runTilePartitionSweep(
                total_tiles, step.tilesOut, step.traceWords,
                PartitionMode::Fast, link, mhz, cycles, exec);
            table.addRow(
                {std::to_string(exact.interfaceBits),
                 TextTable::num(exact.simRateMhz, 3),
                 TextTable::num(fast.simRateMhz, 3),
                 TextTable::num(fast.simRateMhz / exact.simRateMhz,
                                2) +
                     "x"});
            for (const auto *pt : {&exact, &fast}) {
                JsonRow row;
                addRunIdentity(row, "fireaxe.bench.v1",
                               "fig11_qsfp_sweep", pt->planHash,
                               pt->contentHash, "sequential",
                               rtlsim::toString(
                                   rtlsim::defaultEvalEngine()),
                               0);
                row.field("bitstream_mhz", mhz)
                    .field("mode", pt == &exact ? "exact" : "fast")
                    .field("interface_bits", pt->interfaceBits)
                    .field("sim_rate_mhz", pt->simRateMhz)
                    .field("fmr", pt->fmr)
                    .field("target_cycles", pt->targetCycles)
                    .field("deadlocked", pt->deadlocked);
                json.add(row);
            }
        }
        std::cout << "=== Figure 11: QSFP sweep @ " << mhz
                  << " MHz bitstream ===\n";
        table.print(std::cout);
        std::cout << "\n";
    }

    // Ablation: analytic lower-bound model vs executed mechanics.
    TextTable ablation({"interface (bits)", "analytic exact (MHz)",
                        "executed exact (MHz)"});
    for (const auto &step : widthSteps) {
        auto exact = runTilePartitionSweep(
            total_tiles, step.tilesOut, step.traceWords,
            PartitionMode::Exact, link, 50.0, cycles, exec);
        double model =
            analyticRateMhz(link, exact.interfaceBits, 2, 50.0);
        ablation.addRow({std::to_string(exact.interfaceBits),
                         TextTable::num(model, 3),
                         TextTable::num(exact.simRateMhz, 3)});
        JsonRow row;
        addRunIdentity(row, "fireaxe.bench.v1", "fig11_qsfp_sweep",
                       exact.planHash, exact.contentHash,
                       "sequential",
                       rtlsim::toString(rtlsim::defaultEvalEngine()),
                       0);
        row.field("mode", "ablation")
            .field("bitstream_mhz", 50.0)
            .field("interface_bits", exact.interfaceBits)
            .field("analytic_rate_mhz", model)
            .field("sim_rate_mhz", exact.simRateMhz)
            .field("fmr", exact.fmr)
            .field("target_cycles", exact.targetCycles);
        json.add(row);
    }
    std::cout << "=== Ablation: closed-form model vs executed "
                 "token mechanics (50 MHz) ===\n";
    ablation.print(std::cout);
    return 0;
}
