/**
 * @file
 * Service-level benchmark for the fireaxed job engine (ISSUE 8
 * acceptance numbers):
 *
 *   1. Cold vs warm submission latency — the same job submitted twice
 *      against one ArtifactCache. The warm row must show all three
 *      cache shards hitting (elaboration, verify report, compiled
 *      programs) and a setup latency (elaborate+verify+init) that is
 *      a fraction of the cold one: repeat submissions skip straight
 *      to execution.
 *
 *   2. N concurrent vs N sequential — N identical jobs through a
 *      SimService worker pool versus the same N run back-to-back
 *      through JobRunner, both over a pre-warmed shared cache.
 *      Reports wall-clock for each and checks every concurrent job's
 *      trace hash against the sequential golden: multi-tenancy must
 *      not perturb results.
 *
 * Usage: bench_svc [--target NAME] [--cycles N] [--jobs N]
 *                  [--engine NAME] [--json PATH]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "svc/jobrunner.hh"
#include "svc/protocol.hh"
#include "svc/service.hh"
#include "svc/targets.hh"
#include "sweep_common.hh"

using namespace fireaxe;

namespace {

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
addOutcomeRow(bench::JsonRows &rows, const svc::JobSpec &spec,
              const svc::RunOutcome &o, const char *phase,
              double latency_ms)
{
    bench::JsonRow row;
    bench::addRunIdentity(row, "fireaxe.bench.v1", spec.target,
                          o.planHash, o.artifactHash, spec.backend,
                          spec.engine.empty()
                              ? rtlsim::toString(
                                    rtlsim::defaultEvalEngine())
                              : spec.engine.c_str(),
                          spec.workers);
    row.field("bench", "svc_submission")
        .field("phase", phase)
        .field("target_cycles", spec.cycles)
        .field("latency_ms", latency_ms)
        .field("elaborate_ns", o.elaborateNs)
        .field("verify_ns", o.verifyNs)
        .field("init_ns", o.initNs)
        .field("run_ns", o.runNs)
        .field("elab_cache_hit", o.elabCacheHit)
        .field("verify_cache_hit", o.verifyCacheHit)
        .field("program_cache_hit", o.programCacheHit)
        .field("trace_hash", o.traceHash)
        .field("final_sig", o.finalSig);
    rows.add(row);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string target = "bus-soc";
    std::string engine = "compiled";
    std::string json_path;
    uint64_t cycles = 2000;
    unsigned jobs = 4;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "bench_svc: %s needs a value\n",
                             arg.c_str());
                exit(2);
            }
            return argv[++i];
        };
        if (arg == "--target")
            target = value();
        else if (arg == "--cycles")
            cycles = std::strtoull(value().c_str(), nullptr, 0);
        else if (arg == "--jobs")
            jobs = unsigned(
                std::strtoul(value().c_str(), nullptr, 0));
        else if (arg == "--engine")
            engine = value();
        else if (arg == "--json")
            json_path = value();
        else {
            std::fprintf(stderr,
                         "usage: bench_svc [--target NAME] "
                         "[--cycles N] [--jobs N] [--engine NAME] "
                         "[--json PATH]\n");
            return arg == "--help" || arg == "-h" ? 0 : 2;
        }
    }
    if (!svc::findTarget(target)) {
        std::fprintf(stderr, "bench_svc: unknown target '%s'\n",
                     target.c_str());
        return 2;
    }
    if (jobs == 0)
        jobs = 1;

    svc::JobSpec spec;
    spec.target = target;
    spec.cycles = cycles;
    spec.engine = engine == "default" ? "" : engine;

    bench::JsonRows rows(json_path);

    // --- 1. cold vs warm submission latency -----------------------
    svc::ArtifactCache cache;
    std::printf("submission latency: target %s, %llu cycles, engine "
                "%s\n",
                target.c_str(), (unsigned long long)cycles,
                engine.c_str());
    std::printf("%-6s %12s %14s %12s %12s %6s %6s %6s\n", "phase",
                "latency_ms", "elaborate_ms", "verify_ms", "init_ms",
                "elab", "verif", "prog");

    svc::RunOutcome cold, warm;
    double cold_ms = 0.0, warm_ms = 0.0;
    for (int pass = 0; pass < 2; ++pass) {
        double t0 = nowMs();
        svc::RunOutcome o = svc::runJob(spec, &cache);
        double ms = nowMs() - t0;
        if (!o.ok) {
            std::fprintf(stderr, "bench_svc: job failed: %s\n",
                         o.error.c_str());
            return 1;
        }
        const char *phase = pass == 0 ? "cold" : "warm";
        std::printf("%-6s %12.2f %14.3f %12.3f %12.3f %6s %6s %6s\n",
                    phase, ms, o.elaborateNs / 1e6, o.verifyNs / 1e6,
                    o.initNs / 1e6, o.elabCacheHit ? "hit" : "miss",
                    o.verifyCacheHit ? "hit" : "miss",
                    o.programCacheHit ? "hit" : "miss");
        addOutcomeRow(rows, spec, o, phase, ms);
        (pass == 0 ? cold : warm) = o;
        (pass == 0 ? cold_ms : warm_ms) = ms;
    }
    double cold_setup =
        cold.elaborateNs + cold.verifyNs + cold.initNs;
    double warm_setup =
        warm.elaborateNs + warm.verifyNs + warm.initNs;
    std::printf("warm setup %.3f ms vs cold %.3f ms (%.1fx)\n",
                warm_setup / 1e6, cold_setup / 1e6,
                warm_setup > 0.0 ? cold_setup / warm_setup : 0.0);
    if (warm.traceHash != cold.traceHash) {
        std::fprintf(stderr, "bench_svc: warm trace hash diverged\n");
        return 1;
    }

    // --- 2. N concurrent vs N sequential --------------------------
    // Sequential golden first, over its own pre-warmed cache so both
    // sides measure execution, not elaboration.
    std::printf("\nconcurrency: %u identical jobs, %u workers\n",
                jobs, jobs);
    svc::ArtifactCache seq_cache;
    (void)svc::runJob(spec, &seq_cache); // warm
    double t0 = nowMs();
    std::vector<uint64_t> seq_hashes;
    for (unsigned i = 0; i < jobs; ++i) {
        svc::RunOutcome o = svc::runJob(spec, &seq_cache);
        if (!o.ok) {
            std::fprintf(stderr, "bench_svc: sequential job %u "
                                 "failed: %s\n",
                         i, o.error.c_str());
            return 1;
        }
        seq_hashes.push_back(o.traceHash);
    }
    double seq_ms = nowMs() - t0;

    svc::ServiceConfig scfg;
    scfg.workers = jobs;
    svc::SimService service(scfg);
    // Warm the service's own cache the same way.
    (void)svc::runJob(spec, &service.cache());

    std::mutex hashes_mtx;
    std::vector<uint64_t> conc_hashes(jobs, 0);
    unsigned failures = 0;
    t0 = nowMs();
    for (unsigned i = 0; i < jobs; ++i) {
        service.submit(spec, [&, i](const std::string &line) {
            // Terminal result lines carry "trace_hash":"0x...".
            auto at = line.find("\"trace_hash\":\"");
            std::lock_guard<std::mutex> lock(hashes_mtx);
            if (at != std::string::npos)
                conc_hashes[i] = svc::parseHexHash(
                    line.substr(at + 14, 18));
            else if (line.find("\"type\":\"error\"") !=
                     std::string::npos)
                ++failures;
        });
    }
    service.waitAll();
    double conc_ms = nowMs() - t0;

    bool exact = failures == 0;
    for (unsigned i = 0; i < jobs && exact; ++i)
        exact = conc_hashes[i] == seq_hashes[i];
    double speedup = conc_ms > 0.0 ? seq_ms / conc_ms : 0.0;
    std::printf("%-12s %10s %10s %8s %9s\n", "schedule", "wall_ms",
                "speedup", "jobs", "bit_exact");
    std::printf("%-12s %10.2f %10s %8u %9s\n", "sequential", seq_ms,
                "1.00", jobs, "ref");
    std::printf("%-12s %10.2f %10.2f %8u %9s\n", "concurrent",
                conc_ms, speedup, jobs, exact ? "yes" : "NO");

    {
        bench::JsonRow row;
        bench::addRunIdentity(row, "fireaxe.bench.v1", spec.target,
                              cold.planHash, cold.artifactHash,
                              spec.backend,
                              spec.engine.empty()
                                  ? rtlsim::toString(
                                        rtlsim::defaultEvalEngine())
                                  : spec.engine.c_str(),
                              jobs);
        row.field("bench", "svc_concurrency")
            .field("jobs", jobs)
            .field("target_cycles", cycles)
            .field("sequential_wall_ms", seq_ms)
            .field("concurrent_wall_ms", conc_ms)
            .field("speedup", speedup)
            .field("bit_exact", exact);
        rows.add(row);
    }

    if (!exact) {
        std::fprintf(stderr, "bench_svc: concurrent jobs diverged "
                             "from sequential golden\n");
        return 1;
    }
    return 0;
}
