/**
 * @file
 * Figure 9: the leaky-DMA effect. Average NIC request-to-response
 * bus-transaction latency (read = NIC fetching TX packets from the
 * L2, write = NIC writing RX packets into the L2) versus the number
 * of forwarding cores, for a crossbar bus and a ring NoC.
 *
 * Expected shape: latencies climb with core count (cache and bus
 * contention as the buffer footprint outgrows the 2 DDIO ways of the
 * 128 kB LLC); the crossbar's write latency climbs much faster than
 * the ring's and crosses it beyond ~6 cores, while the ring has
 * higher per-transaction overhead under low load.
 */

#include <iostream>

#include "base/table.hh"
#include "nic/leaky_dma.hh"

using namespace fireaxe;
using namespace fireaxe::nic;

int
main()
{
    TextTable table({"cores", "XBar Rd (ns)", "XBar Wr (ns)",
                     "Ring Rd (ns)", "Ring Wr (ns)", "XBar miss",
                     "Ring miss"});

    for (unsigned cores = 1; cores <= 12; ++cores) {
        LeakyDmaConfig xbar;
        xbar.forwardingCores = cores;
        xbar.topology = Topology::Crossbar;
        auto rx = runLeakyDma(xbar);

        LeakyDmaConfig ring = xbar;
        ring.topology = Topology::Ring;
        auto rr = runLeakyDma(ring);

        table.addRow({std::to_string(cores),
                      TextTable::num(rx.avgReadLatencyNs, 1),
                      TextTable::num(rx.avgWriteLatencyNs, 1),
                      TextTable::num(rr.avgReadLatencyNs, 1),
                      TextTable::num(rr.avgWriteLatencyNs, 1),
                      TextTable::num(rx.llcMissRate, 3),
                      TextTable::num(rr.llcMissRate, 3)});
    }

    std::cout << "=== Figure 9: leaky-DMA, NIC bus-transaction "
                 "latency vs forwarding cores ===\n";
    std::cout << "(server SoC: 12 cores, 128 kB LLC, 8 ways, 2 DDIO "
                 "ways, 1500 B packets, 128-entry queues)\n";
    table.print(std::cout);
    return 0;
}
