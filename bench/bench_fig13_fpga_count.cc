/**
 * @file
 * Figure 13: FPGA-count performance sweeps. A ring-NoC SoC is
 * partitioned across 2..5 FPGAs with NoC-partition-mode; each FPGA
 * exchanges tokens only with its ring neighbours, so the interface
 * width per link stays constant.
 *
 * Expected shape: the rate declines mildly as FPGAs are added (each
 * additional hop adds token-exchange timing slack even though links
 * are point-to-point), and higher bitstream frequencies help.
 */

#include <iostream>

#include "base/table.hh"
#include "platform/executor.hh"
#include "platform/fpga.hh"
#include "ripper/nocselect.hh"
#include "ripper/partition.hh"
#include "target/noc_soc.hh"
#include "transport/link.hh"

using namespace fireaxe;
using namespace fireaxe::platform;
using namespace fireaxe::ripper;

namespace {

/**
 * Partition the 9-node ring SoC (8 tiles + subsystem) across
 * @p fpgas FPGAs: the 8 tile nodes are divided into fpgas-1 groups
 * of consecutive routers, the subsystem keeps the last FPGA.
 */
double
ringRateMhz(unsigned fpgas, double mhz)
{
    target::RingNocSocConfig cfg;
    cfg.numNodes = 9;
    cfg.memWords = 256;
    auto soc = target::buildRingNocSoc(cfg);

    unsigned groups = fpgas - 1;
    unsigned nodes_per_group = 8 / groups;
    PartitionSpec spec;
    spec.mode = PartitionMode::Exact;
    unsigned node = 1;
    for (unsigned g = 0; g < groups; ++g) {
        std::set<unsigned> indices;
        unsigned take = g == groups - 1 ? (9 - node)
                                        : nodes_per_group;
        for (unsigned i = 0; i < take && node < 9; ++i)
            indices.insert(node++);
        PartitionGroupSpec gs;
        gs.name = "nodes" + std::to_string(g);
        gs.instancePaths = selectNocGroup(soc, indices);
        spec.groups.push_back(gs);
    }
    auto plan = partition(soc, spec);

    // The paper attributes the mild decline with FPGA count to
    // "minor timing issues regarding token exchange": every board
    // runs its own oscillator, and with more boards in the ring the
    // Aurora channel alignment and credit-return slack accumulate.
    // Model both: per-board clock skew and per-ring-size link slack.
    std::vector<FpgaSpec> boards;
    for (unsigned i = 0; i < fpgas; ++i)
        boards.push_back(alveoU250(mhz * (1.0 - 0.02 * i)));
    auto link = transport::qsfpAurora();
    link.latencyNs *= 1.0 + 0.06 * (fpgas - 2);

    MultiFpgaSim sim(plan, boards, link);
    auto result = sim.run(400);
    return result.deadlocked ? 0.0 : result.simRateMhz();
}

} // namespace

int
main()
{
    TextTable table({"FPGAs (ring)", "20 MHz", "40 MHz", "60 MHz"});
    for (unsigned fpgas = 2; fpgas <= 5; ++fpgas) {
        table.addRow({std::to_string(fpgas),
                      TextTable::num(ringRateMhz(fpgas, 20.0), 3),
                      TextTable::num(ringRateMhz(fpgas, 40.0), 3),
                      TextTable::num(ringRateMhz(fpgas, 60.0), 3)});
    }
    std::cout << "=== Figure 13: simulation rate (MHz) vs FPGA "
                 "count, ring NoC partition ===\n";
    table.print(std::cout);
    return 0;
}
