/**
 * @file
 * Fault-rate sweep: achieved simulation rate of a partitioned bus
 * SoC as the per-token fault rate on the inter-FPGA links rises,
 * for the three paper transports (companion to the Fig. 11/12
 * performance sweeps — the reliability tax instead of the width
 * tax).
 *
 * Expected shape: at rates up to ~1e-3/token the retransmission
 * machinery recovers with negligible rate loss (recovery latency is
 * amortized over thousands of clean tokens); by 1e-2 the timeout and
 * backoff penalties dominate the slower transports. Results stay
 * bit-exact at every rate — the sweep cross-checks every faulted run
 * against the monolithic golden trace and reports the retransmission
 * counts alongside the rate.
 */

#include <fstream>
#include <iostream>
#include <vector>

#include "base/table.hh"
#include "obs/telemetry.hh"
#include "platform/executor.hh"
#include "platform/fpga.hh"
#include "ripper/partition.hh"
#include "sweep_common.hh"
#include "target/bus_soc.hh"
#include "transport/fault.hh"
#include "transport/link.hh"

using namespace fireaxe;

namespace {

struct FaultPoint
{
    double simRateMhz = 0.0;
    uint64_t retransmits = 0;
    bool bitExact = false;
    uint64_t planHash = 0;
    uint64_t contentHash = 0;
};

std::vector<uint64_t>
goldenStatus(const firrtl::Circuit &soc, uint64_t cycles)
{
    std::vector<uint64_t> mono;
    platform::runMonolithic(
        soc, nullptr,
        [&mono](rtlsim::Simulator &sim, unsigned, uint64_t) {
            mono.push_back(sim.peek("status"));
        },
        cycles);
    return mono;
}

FaultPoint
runPoint(const firrtl::Circuit &soc,
         const std::vector<uint64_t> &mono,
         const transport::LinkParams &link, double fault_rate,
         uint64_t cycles,
         const obs::TelemetryConfig *telemetry = nullptr,
         std::ostream *metrics_os = nullptr,
         std::ostream *trace_os = nullptr,
         const platform::ExecConfig *exec = nullptr)
{
    ripper::PartitionSpec spec;
    spec.mode = ripper::PartitionMode::Exact;
    spec.groups.push_back({"tiles", {"tile0", "tile1"}, 1});
    auto plan = ripper::partition(soc, spec);

    platform::MultiFpgaSim sim(
        plan,
        {platform::alveoU250(50.0), platform::alveoU250(50.0)},
        link);
    if (exec)
        sim.setExecConfig(*exec);
    if (telemetry)
        sim.setTelemetry(*telemetry);
    if (fault_rate > 0.0)
        sim.setFaultModel(
            transport::FaultConfig::uniform(fault_rate, 0xFA11));
    std::vector<uint64_t> part;
    sim.setMonitor(0,
                   [&part](rtlsim::Simulator &s, unsigned,
                           uint64_t) {
                       part.push_back(s.peek("status"));
                   });
    auto result = sim.run(cycles);
    if (metrics_os)
        sim.writeMetricsJson(*metrics_os);
    if (trace_os)
        sim.writeTrace(*trace_os);

    FaultPoint point;
    point.planHash = sim.planHash();
    point.contentHash = sim.contentHash();
    point.simRateMhz = result.simRateMhz();
    point.retransmits = result.retransmits;
    point.bitExact = !result.deadlocked && part.size() >= mono.size();
    if (point.bitExact)
        for (size_t i = 0; i < mono.size(); ++i)
            if (part[i] != mono[i]) {
                point.bitExact = false;
                break;
            }
    return point;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    bench::JsonRows json(args.jsonPath);

    target::BusSocConfig cfg;
    cfg.numTiles = 3;
    cfg.memWords = 256;
    auto soc = target::buildBusSoc(cfg);
    const uint64_t cycles = args.cycles ? args.cycles : 800;
    auto mono = goldenStatus(soc, cycles);

    // --snapshot-every/--snapshot-dir: every faulted run carries the
    // autosnapshot machinery; the golden cross-check then doubles as
    // evidence that snapshot cuts under fault injection do not
    // perturb the simulation.
    platform::ExecConfig exec_cfg;
    args.applyRecovery(exec_cfg);
    const platform::ExecConfig *exec =
        args.snapshotEvery ? &exec_cfg : nullptr;

    const double rates[] = {0.0, 1e-4, 1e-3, 1e-2};
    const transport::LinkParams links[] = {
        transport::qsfpAurora(), transport::pciePeerToPeer(),
        transport::hostManagedPcie()};
    const char *linkNames[] = {"qsfp", "pcie_p2p", "host_pcie"};

    TextTable table({"fault rate", "qsfp (MHz)", "rtx",
                     "pcie-p2p (MHz)", "rtx", "host-pcie (kHz)",
                     "rtx", "bit-exact"});
    for (double rate : rates) {
        std::vector<std::string> row;
        row.push_back(rate == 0.0 ? "0"
                                  : TextTable::num(rate, 4));
        bool all_exact = true;
        std::vector<FaultPoint> points;
        for (const auto &link : links)
            points.push_back(runPoint(soc, mono, link, rate, cycles,
                                      nullptr, nullptr, nullptr,
                                      exec));
        for (size_t i = 0; i < points.size(); ++i) {
            double rate_val = points[i].simRateMhz;
            if (i == 2)
                rate_val *= 1000.0; // host-pcie column in kHz
            row.push_back(TextTable::num(rate_val, 3));
            row.push_back(std::to_string(points[i].retransmits));
            all_exact = all_exact && points[i].bitExact;

            bench::JsonRow jrow;
            bench::addRunIdentity(
                jrow, "fireaxe.bench.v1", "fault_sweep",
                points[i].planHash, points[i].contentHash,
                "sequential",
                rtlsim::toString(rtlsim::defaultEvalEngine()), 0);
            jrow.field("fault_rate", rate)
                .field("transport", linkNames[i])
                .field("sim_rate_mhz", points[i].simRateMhz)
                .field("retransmits", points[i].retransmits)
                .field("target_cycles", cycles)
                .field("bit_exact", points[i].bitExact);
            json.add(jrow);
        }
        row.push_back(all_exact ? "yes" : "NO");
        table.addRow(row);
    }

    std::cout << "=== Fault-rate sweep: partitioned bus SoC, "
                 "exact mode, 2 FPGAs @ 50 MHz ===\n";
    table.print(std::cout);
    std::cout << "\nEvery row must report bit-exact = yes: injected"
                 " faults only cost simulation rate.\n";

    // Telemetry showcase: re-run the qsfp @ 1e-3 point with the full
    // telemetry bundle and export the metrics snapshot and Chrome
    // trace for offline inspection (CI validates both parse).
    if (!args.metricsJsonPath.empty() || !args.tracePath.empty()) {
        obs::TelemetryConfig tcfg = obs::TelemetryConfig::full();
        std::ofstream metrics_os, trace_os;
        std::ostream *mp = nullptr, *tp = nullptr;
        if (!args.metricsJsonPath.empty()) {
            metrics_os.open(args.metricsJsonPath);
            mp = &metrics_os;
        }
        if (!args.tracePath.empty()) {
            trace_os.open(args.tracePath);
            tp = &trace_os;
        }
        auto pt = runPoint(soc, mono, transport::qsfpAurora(), 1e-3,
                           cycles, &tcfg, mp, tp, exec);
        std::cout << "\ntelemetry showcase (qsfp @ 1e-3/token): "
                  << TextTable::num(pt.simRateMhz, 3) << " MHz, "
                  << pt.retransmits << " retransmits, bit-exact "
                  << (pt.bitExact ? "yes" : "NO") << "\n";
    }
    return 0;
}
