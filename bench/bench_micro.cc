/**
 * @file
 * google-benchmark microbenchmarks of the simulator infrastructure
 * itself: RTL-interpreter cycle throughput, LI-BDN tick cost,
 * FireRipper compile time, and the uarch model's instruction
 * throughput. These guard the host-side performance that the
 * figure-level harnesses depend on.
 *
 * `--workers N[,M,...]` switches the binary into a worker-count
 * sweep of the parallel execution backend instead: a five-partition
 * bus SoC is co-simulated once sequentially and once per requested
 * worker count, reporting wall time, speedup, and a bit-exactness
 * check per row (optionally as JSON rows via --json).
 *
 * `--engine interpret,compiled` switches it into an
 * evaluation-engine sweep instead: a set of shipped targets spanning
 * high activity (bus SoC) to long quiescent phases (Gemmini, SHA3,
 * boot) is run monolithically under each requested engine, reporting
 * cycles/sec, speedup over the interpreter, the fraction of node
 * evaluations the activity gating skipped, and a final-state
 * signature check that fails the run on any cross-engine divergence.
 *
 * `--snapshot-every N[,M,...]` switches it into a snapshot-overhead
 * sweep instead: a three-partition bus SoC is co-simulated once
 * without snapshots and once per requested autosnapshot interval
 * (ExecConfig::snapshotEveryCycles), reporting snapshot count, size,
 * cumulative pause time and wall-clock overhead per row. Each row
 * additionally restores the last committed snapshot into a fresh
 * simulator, reruns to the target cycle and checks the final state
 * against the snapshot-free baseline bit-for-bit. `--snapshot-dir`
 * keeps the snapshot directories for inspection (and for feeding
 * `--resume-from`, which measures a single restore-and-finish run).
 *
 * `--token-trace [N,M,...]` switches it into a token-tracing
 * overhead sweep instead: a two-partition bus SoC is co-simulated
 * once with telemetry off and once per requested sampling rate
 * (default 1,16,64) with causal token tracing enabled, reporting the
 * record count and wall-clock overhead per row plus a bit-exactness
 * check — tracing is observe-only, so any perturbation of the
 * simulated timeline fails the sweep.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "sweep_common.hh"

#include "recovery/snapshot.hh"

#include "obs/telemetry.hh"
#include "passes/flatten.hh"
#include "platform/executor.hh"
#include "platform/fpga.hh"
#include "ripper/partition.hh"
#include "rtlsim/simulator.hh"
#include "target/accelerators.hh"
#include "target/bus_soc.hh"
#include "target/noc_soc.hh"
#include "transport/link.hh"
#include "uarch/core_model.hh"
#include "uarch/params.hh"

using namespace fireaxe;

static void
BM_RtlSimCycle(benchmark::State &state)
{
    target::BusSocConfig cfg;
    cfg.numTiles = unsigned(state.range(0));
    cfg.memWords = 256;
    auto soc = target::buildBusSoc(cfg);
    rtlsim::Simulator sim(passes::flattenAll(soc));
    for (auto _ : state) {
        sim.step();
        benchmark::DoNotOptimize(sim.peek("status"));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RtlSimCycle)->Arg(2)->Arg(8)->Arg(24);

static void
BM_FireRipperCompile(benchmark::State &state)
{
    target::BusSocConfig cfg;
    cfg.numTiles = unsigned(state.range(0));
    auto soc = target::buildBusSoc(cfg);
    ripper::PartitionSpec spec;
    spec.groups.push_back(
        {"tiles", target::busSocTilePaths(cfg.numTiles / 2), 1});
    for (auto _ : state) {
        auto plan = ripper::partition(soc, spec);
        benchmark::DoNotOptimize(plan.nets.size());
    }
}
BENCHMARK(BM_FireRipperCompile)->Arg(4)->Arg(16);

static void
BM_MultiFpgaTargetCycle(benchmark::State &state)
{
    target::BusSocConfig cfg;
    cfg.numTiles = 4;
    cfg.memWords = 256;
    auto soc = target::buildBusSoc(cfg);
    ripper::PartitionSpec spec;
    spec.groups.push_back(
        {"tiles", target::busSocTilePaths(2), 1});
    auto plan = ripper::partition(soc, spec);
    platform::MultiFpgaSim sim(
        plan, {platform::alveoU250(50.0), platform::alveoU250(50.0)},
        transport::qsfpAurora());
    sim.init();
    uint64_t goal = 0;
    for (auto _ : state) {
        goal += 10;
        sim.run(goal);
    }
    state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_MultiFpgaTargetCycle);

static void
BM_UarchModelInstruction(benchmark::State &state)
{
    uarch::CoreModel model(uarch::gc40BoomParams());
    auto profile = uarch::embenchProfile("crc32");
    profile.instructions = 20000;
    for (auto _ : state) {
        auto r = model.run(profile);
        benchmark::DoNotOptimize(r.cycles);
    }
    state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_UarchModelInstruction);

namespace {

/**
 * Sweep the parallel backend's worker count on a five-partition bus
 * SoC (four tiles split out individually plus the rest partition)
 * and compare against the sequential baseline. Each row checks that
 * the parallel run reproduced the sequential schedule exactly
 * (target cycles and total host time).
 */
int
runWorkerSweep(const std::vector<unsigned> &worker_counts,
               uint64_t cycles, const std::string &json_path)
{
    if (cycles == 0)
        cycles = 2000;

    target::BusSocConfig cfg;
    cfg.numTiles = 8;
    cfg.memWords = 256;
    auto soc = target::buildBusSoc(cfg);

    ripper::PartitionSpec spec;
    spec.mode = ripper::PartitionMode::Exact;
    for (int t = 0; t < 4; ++t) {
        spec.groups.push_back({"t" + std::to_string(t),
                               {"tile" + std::to_string(t)},
                               1});
    }
    auto plan = ripper::partition(soc, spec);
    const unsigned nparts = unsigned(plan.partitions.size());

    uint64_t plan_hash = 0;
    uint64_t content_hash = 0;
    auto measure = [&](const platform::ExecConfig &exec,
                       double &wall_ms) {
        platform::MultiFpgaSim sim(
            plan,
            std::vector<platform::FpgaSpec>(
                nparts, platform::alveoU250(50.0)),
            transport::qsfpAurora());
        sim.setExecConfig(exec);
        sim.init();
        plan_hash = sim.planHash();
        content_hash = sim.contentHash();
        auto t0 = std::chrono::steady_clock::now();
        auto result = sim.run(cycles);
        wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
        return result;
    };

    bench::JsonRows rows(json_path);
    std::printf("worker sweep: bus SoC, %u partitions, %llu target "
                "cycles\n",
                nparts, (unsigned long long)cycles);
    std::printf("%-12s %8s %12s %10s %9s %9s\n", "backend",
                "workers", "host_ns", "wall_ms", "speedup",
                "bit_exact");

    double seq_wall = 0.0;
    auto seq = measure(platform::ExecConfig{}, seq_wall);
    std::printf("%-12s %8s %12.0f %10.2f %9s %9s\n", "sequential",
                "-", seq.hostTimeNs, seq_wall, "1.00", "ref");
    {
        bench::JsonRow row;
        bench::addRunIdentity(
            row, "fireaxe.bench.v1", "bus_soc8", plan_hash,
            content_hash, "sequential",
            rtlsim::toString(rtlsim::defaultEvalEngine()), 0);
        row.field("partitions", nparts)
            .field("target_cycles", seq.targetCycles)
            .field("host_time_ns", seq.hostTimeNs)
            .field("sim_rate_mhz", seq.simRateMhz())
            .field("wall_ms", seq_wall)
            .field("speedup_vs_sequential", 1.0)
            .field("bit_exact", true);
        rows.add(row);
    }

    for (unsigned w : worker_counts) {
        double wall = 0.0;
        auto par = measure(platform::ExecConfig::parallel(w), wall);
        bool exact = par.targetCycles == seq.targetCycles &&
                     par.hostTimeNs == seq.hostTimeNs;
        double speedup = wall > 0.0 ? seq_wall / wall : 0.0;
        std::printf("%-12s %8u %12.0f %10.2f %9.2f %9s\n",
                    "parallel", w, par.hostTimeNs, wall, speedup,
                    exact ? "yes" : "NO");
        bench::JsonRow row;
        bench::addRunIdentity(
            row, "fireaxe.bench.v1", "bus_soc8", plan_hash,
            content_hash, "parallel",
            rtlsim::toString(rtlsim::defaultEvalEngine()), w);
        row.field("partitions", nparts)
            .field("target_cycles", par.targetCycles)
            .field("host_time_ns", par.hostTimeNs)
            .field("sim_rate_mhz", par.simRateMhz())
            .field("wall_ms", wall)
            .field("speedup_vs_sequential", speedup)
            .field("bit_exact", exact);
        rows.add(row);
        if (!exact) {
            std::fprintf(stderr,
                         "worker sweep: parallel run (workers=%u) "
                         "diverged from sequential\n",
                         w);
            return 1;
        }
    }
    rows.write();
    return 0;
}

/**
 * FNV-1a over every partition's reached cycle and full signal table;
 * equal signatures witness bit-exact final state across a
 * snapshot/restore cut (same convention as tests/recovery_test.cc).
 */
uint64_t
finalStateSignature(platform::MultiFpgaSim &sim, size_t nparts)
{
    uint64_t h = 1469598103934665603ull;
    for (size_t p = 0; p < nparts; ++p) {
        auto &m = sim.model(int(p));
        h = recovery::fnv1aMix(h, m.minTargetCycle());
        for (size_t i = 0; i < m.sim().numSignals(); ++i)
            h = recovery::fnv1aMix(h, m.sim().peekIdx(int(i)));
    }
    return h;
}

/**
 * Sweep the autosnapshot interval on a three-partition bus SoC
 * (two tiles split out plus the rest partition) and report what the
 * crash-consistency machinery costs: per row the snapshot count,
 * last snapshot size, cumulative snapshot pause, wall-clock overhead
 * versus the snapshot-free baseline, and two bit-exactness checks —
 * the snapshotting run itself must not perturb the simulation, and a
 * fresh simulator restored from the last committed generation and
 * rerun to the target cycle must land in the identical final state.
 */
int
runSnapshotSweep(const std::vector<uint64_t> &intervals,
                 uint64_t cycles, const std::string &json_path,
                 std::string base_dir)
{
    if (cycles == 0)
        cycles = 2000;

    target::BusSocConfig cfg;
    cfg.numTiles = 4;
    cfg.memWords = 256;
    auto soc = target::buildBusSoc(cfg);
    ripper::PartitionSpec spec;
    spec.mode = ripper::PartitionMode::Exact;
    spec.groups.push_back({"t0", {"tile0"}, 1});
    spec.groups.push_back({"t1", {"tile1"}, 1});
    auto plan = ripper::partition(soc, spec);
    const size_t nparts = plan.partitions.size();
    auto fpgas = std::vector<platform::FpgaSpec>(
        nparts, platform::alveoU250(50.0));

    bool temp_base = base_dir.empty();
    if (temp_base) {
        char tmpl[] = "/tmp/fireaxe-bench-snap-XXXXXX";
        if (!mkdtemp(tmpl)) {
            std::fprintf(stderr,
                         "snapshot sweep: mkdtemp failed\n");
            return 1;
        }
        base_dir = tmpl;
    }

    bench::JsonRows rows(json_path);
    std::printf("snapshot sweep: bus SoC, %zu partitions, %llu "
                "target cycles, dir %s\n",
                nparts, (unsigned long long)cycles,
                base_dir.c_str());
    std::printf("%-10s %10s %12s %10s %10s %10s %10s %7s\n",
                "every", "snapshots", "bytes", "pause_ms", "wall_ms",
                "overhd_%", "bit_exact", "resume");

    double base_wall = 0.0;
    uint64_t base_sig = 0, plan_hash = 0, content_hash = 0;
    platform::RunResult base{};
    {
        platform::MultiFpgaSim sim(plan, fpgas,
                                   transport::qsfpAurora());
        sim.init();
        plan_hash = sim.planHash();
        content_hash = sim.contentHash();
        auto t0 = std::chrono::steady_clock::now();
        base = sim.run(cycles);
        base_wall = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
        base_sig = finalStateSignature(sim, nparts);
    }
    std::printf("%-10s %10s %12s %10s %10.2f %10s %10s %7s\n",
                "off", "-", "-", "-", base_wall, "-", "ref", "-");
    {
        bench::JsonRow row;
        bench::addRunIdentity(
            row, "fireaxe.bench.v1", "bus_soc4", plan_hash,
            content_hash, "sequential",
            rtlsim::toString(rtlsim::defaultEvalEngine()), 0);
        row.field("partitions", uint64_t(nparts))
            .field("snapshot_every", uint64_t(0))
            .field("snapshot_count", uint64_t(0))
            .field("snapshot_bytes", uint64_t(0))
            .field("snapshot_pause_ms", 0.0)
            .field("target_cycles", base.targetCycles)
            .field("host_time_ns", base.hostTimeNs)
            .field("wall_ms", base_wall)
            .field("overhead_pct", 0.0)
            .field("bit_exact", true)
            .field("resume_bit_exact", true);
        rows.add(row);
    }

    int rc = 0;
    for (uint64_t every : intervals) {
        if (every == 0) {
            std::fprintf(stderr, "snapshot sweep: --snapshot-every "
                                 "interval must be > 0\n");
            return 1;
        }
        std::string dir =
            base_dir + "/every" + std::to_string(every);

        platform::ExecConfig exec;
        exec.snapshotEveryCycles = every;
        exec.snapshotDir = dir;
        double wall = 0.0;
        uint64_t snapshots = 0, bytes = 0, sig = 0;
        double pause_ms = 0.0;
        platform::RunResult res{};
        {
            platform::MultiFpgaSim sim(plan, fpgas,
                                       transport::qsfpAurora());
            sim.setExecConfig(exec);
            sim.init();
            auto t0 = std::chrono::steady_clock::now();
            res = sim.run(cycles);
            wall = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
            snapshots = sim.snapshotCount();
            bytes = sim.lastSnapshotBytes();
            pause_ms = sim.totalSnapshotWallMs();
            sig = finalStateSignature(sim, nparts);
        }
        bool exact = res.targetCycles == base.targetCycles &&
                     res.hostTimeNs == base.hostTimeNs &&
                     sig == base_sig;

        bool resume_ok = false;
        {
            platform::MultiFpgaSim resumed(plan, fpgas,
                                           transport::qsfpAurora());
            std::string err;
            if (resumed.restore(dir, err)) {
                auto rr = resumed.run(cycles);
                resume_ok =
                    !rr.deadlocked &&
                    finalStateSignature(resumed, nparts) == base_sig;
            } else {
                std::fprintf(stderr,
                             "snapshot sweep: restore from %s "
                             "failed: %s\n",
                             dir.c_str(), err.c_str());
            }
        }

        double overhead = base_wall > 0.0
                              ? (wall - base_wall) / base_wall * 100.0
                              : 0.0;
        std::printf("%-10llu %10llu %12llu %10.2f %10.2f %10.1f "
                    "%10s %7s\n",
                    (unsigned long long)every,
                    (unsigned long long)snapshots,
                    (unsigned long long)bytes, pause_ms, wall,
                    overhead, exact ? "yes" : "NO",
                    resume_ok ? "yes" : "NO");
        bench::JsonRow row;
        bench::addRunIdentity(
            row, "fireaxe.bench.v1", "bus_soc4", plan_hash,
            content_hash, "sequential",
            rtlsim::toString(rtlsim::defaultEvalEngine()), 0);
        row.field("partitions", uint64_t(nparts))
            .field("snapshot_every", every)
            .field("snapshot_count", snapshots)
            .field("snapshot_bytes", bytes)
            .field("snapshot_pause_ms", pause_ms)
            .field("target_cycles", res.targetCycles)
            .field("host_time_ns", res.hostTimeNs)
            .field("wall_ms", wall)
            .field("overhead_pct", overhead)
            .field("bit_exact", exact)
            .field("resume_bit_exact", resume_ok);
        rows.add(row);
        if (!exact || !resume_ok) {
            std::fprintf(stderr,
                         "snapshot sweep: interval %llu diverged "
                         "from the snapshot-free baseline\n",
                         (unsigned long long)every);
            rc = 1;
        }
    }
    rows.write();
    if (temp_base) {
        std::error_code ec;
        std::filesystem::remove_all(base_dir, ec);
    }
    return rc;
}

/**
 * Restore the committed snapshot in @p dir into the snapshot-sweep
 * design and finish the run to @p cycles, reporting the resume cost
 * (restore wall time, resumed-from cycle, finishing rate). Pairs
 * with `--snapshot-every ... --snapshot-dir DIR`, whose per-interval
 * directories it consumes.
 */
int
runResumeMeasurement(const std::string &dir, uint64_t cycles,
                     const std::string &json_path)
{
    if (cycles == 0)
        cycles = 2000;

    target::BusSocConfig cfg;
    cfg.numTiles = 4;
    cfg.memWords = 256;
    auto soc = target::buildBusSoc(cfg);
    ripper::PartitionSpec spec;
    spec.mode = ripper::PartitionMode::Exact;
    spec.groups.push_back({"t0", {"tile0"}, 1});
    spec.groups.push_back({"t1", {"tile1"}, 1});
    auto plan = ripper::partition(soc, spec);
    const size_t nparts = plan.partitions.size();

    platform::MultiFpgaSim sim(
        plan,
        std::vector<platform::FpgaSpec>(nparts,
                                        platform::alveoU250(50.0)),
        transport::qsfpAurora());
    std::string err;
    auto t0 = std::chrono::steady_clock::now();
    if (!sim.restore(dir, err)) {
        std::fprintf(stderr, "resume: restore from %s failed: %s\n",
                     dir.c_str(), err.c_str());
        return 1;
    }
    double restore_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    uint64_t resume_cycle = 0;
    for (size_t p = 0; p < nparts; ++p)
        resume_cycle =
            std::max(resume_cycle, sim.model(int(p)).minTargetCycle());

    t0 = std::chrono::steady_clock::now();
    auto res = sim.run(cycles);
    double wall = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    std::printf("resume: dir %s restore_ms %.2f resume_cycle %llu "
                "target_cycles %llu wall_ms %.2f rate_mhz %.4f "
                "deadlocked %d\n",
                dir.c_str(), restore_ms,
                (unsigned long long)resume_cycle,
                (unsigned long long)res.targetCycles, wall,
                res.simRateMhz(), res.deadlocked ? 1 : 0);
    bench::JsonRows rows(json_path);
    bench::JsonRow row;
    bench::addRunIdentity(
        row, "fireaxe.bench.v1", "bus_soc4", sim.planHash(),
        sim.contentHash(), "sequential",
        rtlsim::toString(rtlsim::defaultEvalEngine()), 0);
    row.field("partitions", uint64_t(nparts))
        .field("resume_from", dir)
        .field("restore_ms", restore_ms)
        .field("resume_cycle", resume_cycle)
        .field("target_cycles", res.targetCycles)
        .field("wall_ms", wall)
        .field("sim_rate_mhz", res.simRateMhz())
        .field("deadlocked", res.deadlocked);
    rows.add(row);
    rows.write();
    return res.deadlocked ? 1 : 0;
}

/**
 * Sweep the rtlsim evaluation engines over a spread of shipped
 * targets. The interpreter row of each design is the reference: the
 * speedup column is relative to it and every other engine's
 * final-state signature must match it bit-for-bit.
 */
int
runEngineSweep(const std::vector<rtlsim::EvalEngine> &engines,
               uint64_t cycles, const std::string &json_path)
{
    if (cycles == 0)
        cycles = 30000;

    struct Design
    {
        const char *name;
        firrtl::Circuit flat;
    };
    std::vector<Design> designs;
    {
        target::BusSocConfig cfg;
        cfg.numTiles = 4;
        cfg.memWords = 256;
        designs.push_back(
            {"bus_soc4",
             passes::flattenAll(target::buildBusSoc(cfg))});
    }
    designs.push_back(
        {"gemmini", passes::flattenAll(target::buildGemminiSoc())});
    designs.push_back(
        {"sha3", passes::flattenAll(target::buildSha3Soc())});
    designs.push_back(
        {"boot", passes::flattenAll(target::buildBootSoc())});

    bench::JsonRows rows(json_path);
    std::printf("engine sweep: %llu target cycles per design\n",
                (unsigned long long)cycles);
    std::printf("%-10s %-10s %10s %14s %9s %11s %9s\n", "design",
                "engine", "wall_ms", "cycles_per_s", "speedup",
                "gated_frac", "bit_exact");

    int rc = 0;
    for (const auto &design : designs) {
        bench::EnginePoint ref = bench::runEvalEngineMeasurement(
            design.flat, rtlsim::EvalEngine::Interpret, cycles);
        for (auto engine : engines) {
            bench::EnginePoint point =
                engine == rtlsim::EvalEngine::Interpret
                    ? ref
                    : bench::runEvalEngineMeasurement(design.flat,
                                                      engine, cycles);
            bool exact = point.signature == ref.signature;
            double speedup = point.wallMs > 0.0
                                 ? ref.wallMs / point.wallMs
                                 : 0.0;
            uint64_t total =
                point.nodesEvaluated + point.nodesSkipped;
            double gated =
                total > 0 ? double(point.nodesSkipped) / double(total)
                          : 0.0;
            std::printf("%-10s %-10s %10.2f %14.0f %9.2f %11.3f "
                        "%9s\n",
                        design.name, rtlsim::toString(engine),
                        point.wallMs, point.cyclesPerSec, speedup,
                        gated, exact ? "yes" : "NO");
            bench::JsonRow row;
            bench::addRunIdentity(row, "fireaxe.bench.v1",
                                  design.name, 0, 0, "monolithic",
                                  rtlsim::toString(engine), 0);
            row.field("target_cycles", cycles)
                .field("wall_ms", point.wallMs)
                .field("cycles_per_sec", point.cyclesPerSec)
                .field("speedup_vs_interpret", speedup)
                .field("nodes_evaluated", point.nodesEvaluated)
                .field("nodes_skipped", point.nodesSkipped)
                .field("gated_fraction", gated)
                .field("bit_exact", exact);
            rows.add(row);
            if (!exact) {
                std::fprintf(stderr,
                             "engine sweep: %s under engine %s "
                             "diverged from the interpreter\n",
                             design.name, rtlsim::toString(engine));
                rc = 1;
            }
        }
    }
    rows.write();
    return rc;
}

/**
 * Price the token-level causal tracing (obs/tokentrace.hh): a
 * two-partition bus SoC is co-simulated once with telemetry off and
 * once per requested sampling rate with token tracing enabled,
 * reporting the sampled record count and the wall-clock overhead per
 * row (best of three runs each, to keep the percentages out of the
 * scheduler noise). Tracing is observe-only, so every instrumented
 * run must reproduce the baseline simulation bit-for-bit — target
 * cycles, simulated host time and final state signature; any
 * divergence fails the sweep.
 */
int
runTokenTraceSweep(const std::vector<uint64_t> &rates,
                   uint64_t cycles, const std::string &json_path)
{
    if (cycles == 0)
        cycles = 20000;

    target::BusSocConfig cfg;
    cfg.numTiles = 4;
    cfg.memWords = 256;
    auto soc = target::buildBusSoc(cfg);
    ripper::PartitionSpec spec;
    spec.mode = ripper::PartitionMode::Exact;
    spec.groups.push_back(
        {"tiles", target::busSocTilePaths(2), 1});
    auto plan = ripper::partition(soc, spec);
    const size_t nparts = plan.partitions.size();
    auto fpgas = std::vector<platform::FpgaSpec>(
        nparts, platform::alveoU250(50.0));

    struct Measured
    {
        platform::RunResult result;
        double wallMs = 1e300;
        uint64_t sig = 0;
        uint64_t planHash = 0;
        uint64_t contentHash = 0;
        uint64_t records = 0;
        uint64_t dropped = 0;
    };
    auto runOnce = [&](const obs::TelemetryConfig *tcfg,
                       Measured &m) {
        platform::MultiFpgaSim sim(plan, fpgas,
                                   transport::qsfpAurora());
        if (tcfg)
            sim.setTelemetry(*tcfg);
        sim.init();
        auto t0 = std::chrono::steady_clock::now();
        auto result = sim.run(cycles);
        double wall = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        if (wall < m.wallMs) {
            m.wallMs = wall;
            m.result = result;
        }
        m.sig = finalStateSignature(sim, nparts);
        m.planHash = sim.planHash();
        m.contentHash = sim.contentHash();
        if (auto *tel = sim.telemetry(); tel && tel->tokenTrace()) {
            m.records = tel->tokenTrace()->recordsCreated();
            m.dropped = tel->tokenTrace()->recordsDropped();
        }
    };

    bench::JsonRows rows(json_path);
    std::printf("token-trace sweep: bus SoC, %zu partitions, exact "
                "mode, %llu target cycles (best of 5)\n",
                nparts, (unsigned long long)cycles);
    std::printf("%-12s %10s %10s %10s %10s %10s\n", "sample", "records",
                "dropped", "wall_ms", "overhd_%", "bit_exact");

    // Interleave the repetitions (baseline, then each rate, five
    // rounds) and keep the per-config minimum: a host load spike then
    // hits every config alike instead of biasing whichever config it
    // landed on, which matters for single-digit-percent deltas.
    std::vector<obs::TelemetryConfig> tcfgs;
    for (uint64_t every : rates) {
        obs::TelemetryConfig tcfg;
        // Price the causal-tracing layer alone: the metrics registry
        // has its own cost and its own showcases (bench_fault_sweep
        // --metrics-json); here it stays off.
        tcfg.metrics = false;
        tcfg.tokenTrace = true;
        tcfg.tokenSampleEvery = unsigned(every ? every : 1);
        tcfgs.push_back(tcfg);
    }
    Measured base;
    std::vector<Measured> traced(tcfgs.size());
    for (int rep = 0; rep < 5; ++rep) {
        runOnce(nullptr, base);
        for (size_t i = 0; i < tcfgs.size(); ++i)
            runOnce(&tcfgs[i], traced[i]);
    }
    std::printf("%-12s %10s %10s %10.2f %10s %10s\n", "off", "-",
                "-", base.wallMs, "-", "ref");
    {
        bench::JsonRow row;
        bench::addRunIdentity(
            row, "fireaxe.bench.v1", "bus_soc4", base.planHash,
            base.contentHash, "sequential",
            rtlsim::toString(rtlsim::defaultEvalEngine()), 0);
        row.field("partitions", uint64_t(nparts))
            .field("token_sample_every", uint64_t(0))
            .field("token_records", uint64_t(0))
            .field("token_records_dropped", uint64_t(0))
            .field("target_cycles", base.result.targetCycles)
            .field("host_time_ns", base.result.hostTimeNs)
            .field("wall_ms", base.wallMs)
            .field("overhead_pct", 0.0)
            .field("bit_exact", true);
        rows.add(row);
    }

    int rc = 0;
    for (size_t i = 0; i < tcfgs.size(); ++i) {
        const obs::TelemetryConfig &tcfg = tcfgs[i];
        const Measured &m = traced[i];
        bool exact =
            m.result.targetCycles == base.result.targetCycles &&
            m.result.hostTimeNs == base.result.hostTimeNs &&
            m.sig == base.sig;
        double overhead =
            base.wallMs > 0.0
                ? (m.wallMs - base.wallMs) / base.wallMs * 100.0
                : 0.0;
        std::printf("1-in-%-6llu %10llu %10llu %10.2f %10.1f %10s\n",
                    (unsigned long long)tcfg.tokenSampleEvery,
                    (unsigned long long)m.records,
                    (unsigned long long)m.dropped, m.wallMs, overhead,
                    exact ? "yes" : "NO");
        bench::JsonRow row;
        bench::addRunIdentity(
            row, "fireaxe.bench.v1", "bus_soc4", m.planHash,
            m.contentHash, "sequential",
            rtlsim::toString(rtlsim::defaultEvalEngine()), 0);
        row.field("partitions", uint64_t(nparts))
            .field("token_sample_every",
                   uint64_t(tcfg.tokenSampleEvery))
            .field("token_records", m.records)
            .field("token_records_dropped", m.dropped)
            .field("target_cycles", m.result.targetCycles)
            .field("host_time_ns", m.result.hostTimeNs)
            .field("wall_ms", m.wallMs)
            .field("overhead_pct", overhead)
            .field("bit_exact", exact);
        rows.add(row);
        if (!exact) {
            std::fprintf(stderr,
                         "token-trace sweep: 1-in-%llu sampling "
                         "perturbed the simulation\n",
                         (unsigned long long)tcfg.tokenSampleEvery);
            rc = 1;
        }
    }
    rows.write();
    return rc;
}

std::vector<rtlsim::EvalEngine>
parseEngineList(const char *arg)
{
    std::vector<rtlsim::EvalEngine> engines;
    std::string s(arg);
    size_t pos = 0;
    while (pos < s.size()) {
        size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        engines.push_back(
            rtlsim::parseEvalEngine(s.substr(pos, comma - pos)));
        pos = comma + 1;
    }
    return engines;
}

std::vector<unsigned>
parseWorkerList(const char *arg)
{
    std::vector<unsigned> counts;
    std::string s(arg);
    size_t pos = 0;
    while (pos < s.size()) {
        size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        counts.push_back(
            unsigned(std::strtoul(s.substr(pos, comma - pos).c_str(),
                                  nullptr, 10)));
        pos = comma + 1;
    }
    return counts;
}

std::vector<uint64_t>
parseIntervalList(const char *arg)
{
    std::vector<uint64_t> intervals;
    std::string s(arg);
    size_t pos = 0;
    while (pos < s.size()) {
        size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        intervals.push_back(std::strtoull(
            s.substr(pos, comma - pos).c_str(), nullptr, 10));
        pos = comma + 1;
    }
    return intervals;
}

} // namespace

int
main(int argc, char **argv)
{
    // --workers selects the parallel-backend sweep, --engine the
    // evaluation-engine sweep, --snapshot-every the snapshot-overhead
    // sweep, --token-trace the token-tracing overhead sweep and
    // --resume-from a restore-and-finish measurement; everything
    // else is handed to google-benchmark untouched.
    std::vector<unsigned> worker_counts;
    std::vector<rtlsim::EvalEngine> engines;
    std::vector<uint64_t> snapshot_intervals;
    std::vector<uint64_t> token_rates;
    std::string json_path;
    std::string snapshot_dir;
    std::string resume_from;
    uint64_t cycles = 0;
    std::vector<char *> rest{argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--workers") && i + 1 < argc)
            worker_counts = parseWorkerList(argv[++i]);
        else if (!std::strcmp(argv[i], "--engine") && i + 1 < argc)
            engines = parseEngineList(argv[++i]);
        else if (!std::strcmp(argv[i], "--snapshot-every") &&
                 i + 1 < argc)
            snapshot_intervals = parseIntervalList(argv[++i]);
        else if (!std::strcmp(argv[i], "--snapshot-dir") &&
                 i + 1 < argc)
            snapshot_dir = argv[++i];
        else if (!std::strcmp(argv[i], "--token-trace")) {
            // optional rate list; bare flag sweeps the defaults
            if (i + 1 < argc && argv[i + 1][0] != '-')
                token_rates = parseIntervalList(argv[++i]);
            else
                token_rates = {1, 16, 64};
        } else if (!std::strcmp(argv[i], "--resume-from") &&
                   i + 1 < argc)
            resume_from = argv[++i];
        else if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
            json_path = argv[++i];
        else if (!std::strcmp(argv[i], "--cycles") && i + 1 < argc)
            cycles = std::strtoull(argv[++i], nullptr, 10);
        else
            rest.push_back(argv[i]);
    }
    if (!worker_counts.empty())
        return runWorkerSweep(worker_counts, cycles, json_path);
    if (!engines.empty())
        return runEngineSweep(engines, cycles, json_path);
    if (!snapshot_intervals.empty())
        return runSnapshotSweep(snapshot_intervals, cycles, json_path,
                                snapshot_dir);
    if (!token_rates.empty())
        return runTokenTraceSweep(token_rates, cycles, json_path);
    if (!resume_from.empty())
        return runResumeMeasurement(resume_from, cycles, json_path);

    int rest_argc = int(rest.size());
    benchmark::Initialize(&rest_argc, rest.data());
    if (benchmark::ReportUnrecognizedArguments(rest_argc,
                                               rest.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
