/**
 * @file
 * google-benchmark microbenchmarks of the simulator infrastructure
 * itself: RTL-interpreter cycle throughput, LI-BDN tick cost,
 * FireRipper compile time, and the uarch model's instruction
 * throughput. These guard the host-side performance that the
 * figure-level harnesses depend on.
 */

#include <benchmark/benchmark.h>

#include "passes/flatten.hh"
#include "platform/executor.hh"
#include "platform/fpga.hh"
#include "ripper/partition.hh"
#include "rtlsim/simulator.hh"
#include "target/bus_soc.hh"
#include "target/noc_soc.hh"
#include "transport/link.hh"
#include "uarch/core_model.hh"
#include "uarch/params.hh"

using namespace fireaxe;

static void
BM_RtlSimCycle(benchmark::State &state)
{
    target::BusSocConfig cfg;
    cfg.numTiles = unsigned(state.range(0));
    cfg.memWords = 256;
    auto soc = target::buildBusSoc(cfg);
    rtlsim::Simulator sim(passes::flattenAll(soc));
    for (auto _ : state) {
        sim.step();
        benchmark::DoNotOptimize(sim.peek("status"));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RtlSimCycle)->Arg(2)->Arg(8)->Arg(24);

static void
BM_FireRipperCompile(benchmark::State &state)
{
    target::BusSocConfig cfg;
    cfg.numTiles = unsigned(state.range(0));
    auto soc = target::buildBusSoc(cfg);
    ripper::PartitionSpec spec;
    spec.groups.push_back(
        {"tiles", target::busSocTilePaths(cfg.numTiles / 2), 1});
    for (auto _ : state) {
        auto plan = ripper::partition(soc, spec);
        benchmark::DoNotOptimize(plan.nets.size());
    }
}
BENCHMARK(BM_FireRipperCompile)->Arg(4)->Arg(16);

static void
BM_MultiFpgaTargetCycle(benchmark::State &state)
{
    target::BusSocConfig cfg;
    cfg.numTiles = 4;
    cfg.memWords = 256;
    auto soc = target::buildBusSoc(cfg);
    ripper::PartitionSpec spec;
    spec.groups.push_back(
        {"tiles", target::busSocTilePaths(2), 1});
    auto plan = ripper::partition(soc, spec);
    platform::MultiFpgaSim sim(
        plan, {platform::alveoU250(50.0), platform::alveoU250(50.0)},
        transport::qsfpAurora());
    sim.init();
    uint64_t goal = 0;
    for (auto _ : state) {
        goal += 10;
        sim.run(goal);
    }
    state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_MultiFpgaTargetCycle);

static void
BM_UarchModelInstruction(benchmark::State &state)
{
    uarch::CoreModel model(uarch::gc40BoomParams());
    auto profile = uarch::embenchProfile("crc32");
    profile.instructions = 20000;
    for (auto _ : state) {
        auto r = model.run(profile);
        benchmark::DoNotOptimize(r.cycles);
    }
    state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_UarchModelInstruction);

BENCHMARK_MAIN();
