/**
 * @file
 * Figure 8: CPI stacks (TIP time-proportional attribution) for Large
 * BOOM and GC40 BOOM on benchmarks chosen to cover a wide range of
 * performance changes. Expected shape: nettle-aes spends most of its
 * cycles committing (base) — it is machine-width bound, which is why
 * doubling the frontend helps it most — while nbody's cycles are
 * dominated by execution hazards, which extra width cannot fix.
 */

#include <iostream>
#include <vector>

#include "base/table.hh"
#include "uarch/core_model.hh"
#include "uarch/params.hh"

using namespace fireaxe;
using namespace fireaxe::uarch;

int
main()
{
    const std::vector<std::string> selected = {
        "nettle-aes", "aha-mont64", "huffbench", "matmult-int",
        "nsichneu", "nbody"};
    const std::vector<const char *> cats = {
        cpi::base, cpi::frontend, cpi::branch,
        cpi::window, cpi::execute, cpi::memory};

    for (const auto &params : {largeBoomParams(), gc40BoomParams()}) {
        CoreModel model(params);
        TextTable table({"benchmark", "CPI", "base", "frontend",
                         "branch", "window", "execute", "memory"});
        for (const auto &name : selected) {
            auto r = model.run(embenchProfile(name));
            double cpi_total =
                double(r.cycles) / double(r.instructions);
            std::vector<std::string> row = {
                name, TextTable::num(cpi_total, 2)};
            for (const char *cat : cats) {
                double frac = double(r.cpiStack.get(cat)) /
                              double(r.cycles);
                row.push_back(TextTable::num(frac * 100.0, 1) + "%");
            }
            table.addRow(row);
        }
        std::cout << "=== Figure 8: CPI stack, " << params.name
                  << " ===\n";
        table.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
