/**
 * @file
 * Table I: major microarchitectural parameters across Large BOOM,
 * Golden-Cove-like BOOM (GC40 BOOM), and Golden Cove Xeon — the
 * parameter sets driving the Fig. 7/8 experiments.
 */

#include <iostream>

#include "base/table.hh"
#include "uarch/params.hh"

using namespace fireaxe;
using namespace fireaxe::uarch;

int
main()
{
    auto large = largeBoomParams();
    auto gc40 = gc40BoomParams();
    auto xeon = gcXeonParams();

    TextTable table({"", large.name, gc40.name, xeon.name});
    auto row = [&](const std::string &name, auto get) {
        table.addRow({name, std::to_string(get(large)),
                      std::to_string(get(gc40)),
                      std::to_string(get(xeon))});
    };
    row("Issue width", [](const CoreParams &p) { return p.issueWidth; });
    row("ROB entries", [](const CoreParams &p) { return p.robEntries; });
    row("I-Phys Regs", [](const CoreParams &p) { return p.intPhysRegs; });
    row("F-Phys Regs", [](const CoreParams &p) { return p.fpPhysRegs; });
    row("Ld queue entries",
        [](const CoreParams &p) { return p.ldqEntries; });
    row("St queue entries",
        [](const CoreParams &p) { return p.stqEntries; });
    row("Fetch buffer entries",
        [](const CoreParams &p) { return p.fetchBufferEntries; });
    row("L1-I (kB)", [](const CoreParams &p) { return p.l1iKb; });
    row("L1-D (kB)", [](const CoreParams &p) { return p.l1dKb; });

    std::cout << "=== Table I: microarchitectural parameters ===\n";
    table.print(std::cout);
    return 0;
}
