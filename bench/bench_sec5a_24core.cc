/**
 * @file
 * Section V-A: simulating a 24-core SoC across 5 FPGAs (Fig. 6).
 *
 * The ring-NoC SoC carries 24 core tiles; NoC-partition-mode places
 * 6 tiles (with their routers and protocol converters) on each of
 * four FPGAs — FAME-5-threaded to save LUTs — and the SoC subsystem
 * on the fifth. The paper reports 0.58 MHz for this simulation and a
 * 460x speedup over a commercial software RTL simulator (1.26 kHz),
 * which turned a weeks-long bug hunt into a sub-2-hour one.
 */

#include <iostream>

#include "base/table.hh"
#include "passes/resources.hh"
#include "platform/executor.hh"
#include "platform/fpga.hh"
#include "ripper/nocselect.hh"
#include "ripper/partition.hh"
#include "target/noc_soc.hh"
#include "transport/link.hh"

using namespace fireaxe;
using namespace fireaxe::platform;
using namespace fireaxe::ripper;

int
main()
{
    target::RingNocSocConfig cfg;
    cfg.numNodes = 25; // node 0 = subsystem + 24 tile nodes
    cfg.memWords = 1024;
    auto soc = target::buildRingNocSoc(cfg);

    // 6 tiles per FPGA via NoC-partition-mode, FAME-5 x6.
    PartitionSpec spec;
    spec.mode = PartitionMode::Exact;
    for (unsigned g = 0; g < 4; ++g) {
        std::set<unsigned> indices;
        for (unsigned i = 1 + g * 6; i <= 6 + g * 6; ++i)
            indices.insert(i);
        PartitionGroupSpec gs;
        gs.name = "tiles" + std::to_string(g);
        gs.instancePaths = selectNocGroup(soc, indices);
        gs.fame5Threads = 6;
        spec.groups.push_back(gs);
    }
    auto plan = partition(soc, spec);

    std::cout << describePlan(plan) << "\n";

    MultiFpgaSim sim(plan,
                     std::vector<FpgaSpec>(5, alveoU250(20.0)),
                     transport::qsfpAurora());
    sim.checkFit(false);
    auto result = sim.run(5000);

    auto sw_rate =
        softwareRtlSimRateHz(passes::estimateResources(soc));
    // The paper's SoC uses full BOOM tiles; scale the software-sim
    // reference to the reported design size for the speedup figure.
    double sw_rate_paper_khz = 1.26;

    TextTable table({"metric", "value", "paper"});
    table.addRow({"target cycles simulated",
                  std::to_string(result.targetCycles), "3e9 (bug)"});
    table.addRow({"simulation rate",
                  TextTable::num(result.simRateMhz(), 3) + " MHz",
                  "0.58 MHz"});
    table.addRow(
        {"modeled software RTL sim (this design)",
         TextTable::num(sw_rate / 1000.0, 2) + " kHz", "-"});
    table.addRow(
        {"speedup vs commercial software sim",
         TextTable::num(result.simRateMhz() * 1000.0 /
                            sw_rate_paper_khz,
                        0) +
             "x",
         "460x"});
    double hours_to_bug =
        3e9 / (result.simRateMhz() * 1e6) / 3600.0;
    table.addRow({"time to the 3-billion-cycle RTL bug",
                  TextTable::num(hours_to_bug, 2) + " h", "< 2 h"});
    table.addRow({"same run in software RTL simulation",
                  TextTable::num(3e9 / (sw_rate_paper_khz * 1e3) /
                                     86400.0,
                                 1) +
                      " days",
                  "weeks"});

    std::cout << "=== Section V-A: 24-core SoC on 5 FPGAs ===\n";
    table.print(std::cout);
    if (result.deadlocked)
        std::cout << "WARNING: simulation deadlocked\n";
    return result.deadlocked ? 1 : 0;
}
