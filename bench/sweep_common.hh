/**
 * @file
 * Shared helpers for the simulation-performance sweep benches
 * (Figs. 11-14): build a bus SoC, partition its tiles out with
 * FireRipper, co-simulate on modeled FPGAs over a given transport,
 * and report the achieved target frequency.
 */

#ifndef FIREAXE_BENCH_SWEEP_COMMON_HH
#define FIREAXE_BENCH_SWEEP_COMMON_HH

#include <string>
#include <vector>

#include "platform/executor.hh"
#include "platform/fpga.hh"
#include "ripper/partition.hh"
#include "target/bus_soc.hh"
#include "transport/link.hh"

namespace fireaxe::bench {

/** One sweep measurement. */
struct SweepPoint
{
    unsigned interfaceBits = 0;
    double simRateMhz = 0.0;
    bool deadlocked = false;
};

/**
 * Partition @p tiles_out tiles (each with @p trace_words extra
 * boundary words) out of a bus SoC and measure the simulation rate
 * over @p link with both FPGAs at @p bitstream_mhz.
 */
inline SweepPoint
runTilePartitionSweep(unsigned total_tiles, unsigned tiles_out,
                      unsigned trace_words,
                      ripper::PartitionMode mode,
                      const transport::LinkParams &link,
                      double bitstream_mhz, uint64_t cycles = 400)
{
    target::BusSocConfig cfg;
    cfg.numTiles = total_tiles;
    cfg.memWords = 256;
    cfg.tile.traceWords = trace_words;
    auto soc = target::buildBusSoc(cfg);

    ripper::PartitionSpec spec;
    spec.mode = mode;
    ripper::PartitionGroupSpec group;
    group.name = "tiles";
    group.instancePaths = target::busSocTilePaths(tiles_out);
    spec.groups.push_back(group);
    auto plan = ripper::partition(soc, spec);

    platform::MultiFpgaSim sim(
        plan,
        {platform::alveoU250(bitstream_mhz),
         platform::alveoU250(bitstream_mhz)},
        link);
    auto result = sim.run(cycles);

    SweepPoint point;
    // Boundary width of the extracted partition (one side).
    point.interfaceBits = plan.feedback.interfaceWidths[1];
    point.simRateMhz = result.simRateMhz();
    point.deadlocked = result.deadlocked;
    return point;
}

/**
 * Analytic lower-bound rate model (the ablation companion of the
 * executed sweeps): per target cycle the boundary is crossed
 * `crossings` times, each paying flight latency plus serialization,
 * plus a few host cycles of FSM work.
 */
inline double
analyticRateMhz(const transport::LinkParams &link, unsigned bits,
                unsigned crossings, double bitstream_mhz,
                double host_cycles_per_crossing = 3.0)
{
    double per_cycle_ns =
        crossings * (transport::tokenLatencyNs(link) +
                     transport::tokenSerNs(link, bits) +
                     host_cycles_per_crossing * 1000.0 /
                         bitstream_mhz);
    return 1000.0 / per_cycle_ns;
}

} // namespace fireaxe::bench

#endif // FIREAXE_BENCH_SWEEP_COMMON_HH
