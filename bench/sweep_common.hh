/**
 * @file
 * Shared helpers for the simulation-performance sweep benches
 * (Figs. 11-14): build a bus SoC, partition its tiles out with
 * FireRipper, co-simulate on modeled FPGAs over a given transport,
 * and report the achieved target frequency.
 */

#ifndef FIREAXE_BENCH_SWEEP_COMMON_HH
#define FIREAXE_BENCH_SWEEP_COMMON_HH

#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "obs/json.hh"
#include "platform/executor.hh"
#include "platform/fpga.hh"
#include "ripper/partition.hh"
#include "rtlsim/simulator.hh"
#include "target/bus_soc.hh"
#include "transport/link.hh"

namespace fireaxe::bench {

/**
 * Builder for one machine-readable result row: a flat JSON object of
 * named fields. Benches keep printing their human tables to stdout
 * and additionally push one JsonRow per table row into a JsonRows
 * sink when --json is given.
 */
class JsonRow
{
  public:
    JsonRow() : w_(os_) { w_.beginObject(); }

    JsonRow &
    field(std::string_view key, double v)
    {
        w_.key(key);
        w_.value(v);
        return *this;
    }

    JsonRow &
    field(std::string_view key, uint64_t v)
    {
        w_.key(key);
        w_.value(v);
        return *this;
    }

    JsonRow &
    field(std::string_view key, unsigned v)
    {
        return field(key, uint64_t(v));
    }

    JsonRow &
    field(std::string_view key, int v)
    {
        w_.key(key);
        w_.value(v);
        return *this;
    }

    JsonRow &
    field(std::string_view key, bool v)
    {
        w_.key(key);
        w_.value(v);
        return *this;
    }

    JsonRow &
    field(std::string_view key, std::string_view v)
    {
        w_.key(key);
        w_.value(v);
        return *this;
    }

    JsonRow &
    field(std::string_view key, const char *v)
    {
        return field(key, std::string_view(v));
    }

    /** Open a nested object value; pair with endObjectField(). */
    JsonRow &
    beginObjectField(std::string_view key)
    {
        w_.key(key);
        w_.beginObject();
        return *this;
    }

    JsonRow &
    endObjectField()
    {
        w_.endObject();
        return *this;
    }

    /** Finish the object and return its JSON text. */
    std::string
    str()
    {
        w_.endObject();
        return os_.str();
    }

  private:
    std::ostringstream os_;
    obs::JsonWriter w_;
};

/**
 * Stamp the uniform run-identity prefix onto a result row. Every
 * machine-readable row the tools and benches emit (fireaxe-run
 * --json, bench --json) starts with the same fields so sweep
 * tooling can join rows across producers:
 *   schema        — row schema tag ("fireaxe.run.v1" /
 *                   "fireaxe.bench.v1")
 *   target        — design or bench-case label
 *   plan_hash     — MultiFpgaSim::planHash() (0 when no plan exists,
 *                   e.g. monolithic engine benches)
 *   artifact_hash — platform::contentHash() of the design+plan (0
 *                   when no plan exists); the same 64-bit identity
 *                   telemetry stream headers carry and the service
 *                   artifact cache keys on, so rows, streams, and
 *                   cache entries for one submitted design join on
 *                   one name
 *   backend       — "sequential" / "parallel"
 *   engine        — evaluation engine name
 *   workers       — parallel worker count (0 = auto / n.a.)
 *   exec          — the same execution config as one nested object
 *                   {backend, engine, workers, batch_depth}; the
 *                   one uniform place sweep tooling reads the config
 *                   from (the flat fields stay for back-compat)
 */
inline JsonRow &
addRunIdentity(JsonRow &row, std::string_view schema,
               std::string_view target, uint64_t plan_hash,
               uint64_t artifact_hash, std::string_view backend,
               std::string_view engine, unsigned workers,
               // Benches pick up batching from the environment (the
               // default ExecConfig does), so the default here is the
               // same resolved value — rows stay truthful under
               // FIREAXE_BATCH_DEPTH without touching every caller.
               unsigned batch_depth = platform::defaultBatchDepth())
{
    row.field("schema", schema)
        .field("target", target)
        .field("plan_hash", plan_hash)
        .field("artifact_hash", artifact_hash)
        .field("backend", backend)
        .field("engine", engine)
        .field("workers", workers);
    row.beginObjectField("exec")
        .field("backend", backend)
        .field("engine", engine)
        .field("workers", workers)
        .field("batch_depth", batch_depth)
        .endObjectField();
    return row;
}

/**
 * Collects JsonRow objects and writes them as one JSON array
 * document on write() (also called from the destructor). An empty
 * path disables the sink; add() becomes a no-op, so benches can emit
 * rows unconditionally.
 */
class JsonRows
{
  public:
    explicit JsonRows(std::string path = {}) : path_(std::move(path))
    {}
    ~JsonRows() { write(); }

    bool enabled() const { return !path_.empty(); }

    void
    add(JsonRow &row)
    {
        if (enabled())
            rows_.push_back(row.str());
    }

    void
    write()
    {
        if (!enabled() || written_)
            return;
        written_ = true;
        std::ofstream os(path_);
        if (!os) {
            warn("cannot write JSON rows to '", path_, "'");
            return;
        }
        obs::JsonWriter w(os);
        w.beginArray();
        for (const std::string &row : rows_)
            w.raw(row);
        w.endArray();
        os << "\n";
    }

  private:
    std::string path_;
    std::vector<std::string> rows_;
    bool written_ = false;
};

/**
 * Uniform CLI surface of the sweep benches:
 *   --json PATH          per-row results as a JSON array
 *   --metrics-json PATH  telemetry metrics snapshot (benches that
 *                        run a telemetry showcase)
 *   --trace PATH         Chrome trace_event JSON of the same run
 *   --cycles N           override the bench's target-cycle count
 *   --snapshot-every N   autosnapshot the bench run every N target
 *                        cycles (crash-consistent; see src/recovery)
 *   --snapshot-dir DIR   snapshot directory for --snapshot-every
 *   --resume-from DIR    restore the committed snapshot in DIR
 *                        before the measured run
 * Unknown arguments are fatal so CI typos fail loudly.
 */
struct BenchArgs
{
    std::string jsonPath;
    std::string metricsJsonPath;
    std::string tracePath;
    uint64_t cycles = 0; ///< 0 = keep the bench default
    uint64_t snapshotEvery = 0;
    std::string snapshotDir;
    std::string resumeFrom;

    static BenchArgs
    parse(int argc, char **argv)
    {
        BenchArgs args;
        auto need = [&](int i) -> const char * {
            if (i + 1 >= argc)
                fatal("missing value after ", argv[i]);
            return argv[i + 1];
        };
        for (int i = 1; i < argc; ++i) {
            if (!std::strcmp(argv[i], "--json"))
                args.jsonPath = need(i++);
            else if (!std::strcmp(argv[i], "--metrics-json"))
                args.metricsJsonPath = need(i++);
            else if (!std::strcmp(argv[i], "--trace"))
                args.tracePath = need(i++);
            else if (!std::strcmp(argv[i], "--cycles"))
                args.cycles = std::strtoull(need(i++), nullptr, 10);
            else if (!std::strcmp(argv[i], "--snapshot-every"))
                args.snapshotEvery =
                    std::strtoull(need(i++), nullptr, 10);
            else if (!std::strcmp(argv[i], "--snapshot-dir"))
                args.snapshotDir = need(i++);
            else if (!std::strcmp(argv[i], "--resume-from"))
                args.resumeFrom = need(i++);
            else
                fatal("unknown argument '", argv[i],
                      "' (expected --json/--metrics-json/--trace/"
                      "--cycles/--snapshot-every/--snapshot-dir/"
                      "--resume-from)");
        }
        return args;
    }

    /** Plumb the recovery flags into an executor config. */
    void
    applyRecovery(platform::ExecConfig &exec) const
    {
        exec.snapshotEveryCycles = snapshotEvery;
        exec.snapshotDir = snapshotDir;
    }

    /** Restore @p sim from --resume-from if given; fatal() on a
     *  failed restore (a bench resumed from a bad snapshot would
     *  silently measure the wrong thing). */
    void
    maybeResume(platform::MultiFpgaSim &sim) const
    {
        if (resumeFrom.empty())
            return;
        std::string error;
        if (!sim.restore(resumeFrom, error))
            fatal("--resume-from ", resumeFrom, ": ", error);
    }
};

/** One sweep measurement. */
struct SweepPoint
{
    unsigned interfaceBits = 0;
    double simRateMhz = 0.0;
    bool deadlocked = false;
    uint64_t targetCycles = 0;
    /** FPGA-to-target cycle ratio (host cycles per target cycle). */
    double fmr = 0.0;
    /** Partition-plan identity of the measured run (addRunIdentity). */
    uint64_t planHash = 0;
    /** Design+plan content hash (platform::contentHash). */
    uint64_t contentHash = 0;
};

/**
 * Partition @p tiles_out tiles (each with @p trace_words extra
 * boundary words) out of a bus SoC and measure the simulation rate
 * over @p link with both FPGAs at @p bitstream_mhz. A non-null
 * @p exec overrides the executor config (worker count, autosnapshot
 * interval/directory), so sweeps can measure the recovery machinery
 * in-line.
 */
inline SweepPoint
runTilePartitionSweep(unsigned total_tiles, unsigned tiles_out,
                      unsigned trace_words,
                      ripper::PartitionMode mode,
                      const transport::LinkParams &link,
                      double bitstream_mhz, uint64_t cycles = 400,
                      const platform::ExecConfig *exec = nullptr)
{
    target::BusSocConfig cfg;
    cfg.numTiles = total_tiles;
    cfg.memWords = 256;
    cfg.tile.traceWords = trace_words;
    auto soc = target::buildBusSoc(cfg);

    ripper::PartitionSpec spec;
    spec.mode = mode;
    ripper::PartitionGroupSpec group;
    group.name = "tiles";
    group.instancePaths = target::busSocTilePaths(tiles_out);
    spec.groups.push_back(group);
    auto plan = ripper::partition(soc, spec);

    platform::MultiFpgaSim sim(
        plan,
        {platform::alveoU250(bitstream_mhz),
         platform::alveoU250(bitstream_mhz)},
        link);
    if (exec)
        sim.setExecConfig(*exec);
    auto result = sim.run(cycles);

    SweepPoint point;
    point.planHash = sim.planHash();
    point.contentHash = sim.contentHash();
    // Boundary width of the extracted partition (one side).
    point.interfaceBits = plan.feedback.interfaceWidths[1];
    point.simRateMhz = result.simRateMhz();
    point.deadlocked = result.deadlocked;
    point.targetCycles = result.targetCycles;
    if (result.targetCycles > 0) {
        double host_cycles = result.hostTimeNs /
                             (1000.0 / bitstream_mhz);
        point.fmr = host_cycles / double(result.targetCycles);
    }
    return point;
}

/** One evaluation-engine measurement of a monolithic simulator. */
struct EnginePoint
{
    double wallMs = 0.0;
    double cyclesPerSec = 0.0;
    uint64_t nodesEvaluated = 0;
    uint64_t nodesSkipped = 0;
    /** FNV-1a over the final signal table; equal signatures across
     *  engines witness bit-exactness of the whole run. */
    uint64_t signature = 0;
};

/**
 * Run @p cycles target cycles of a flat circuit under the given
 * evaluation engine and report throughput, activity-gating counters
 * and the final-state signature. Used by `bench_micro --engine`.
 */
inline EnginePoint
runEvalEngineMeasurement(const firrtl::Circuit &flat,
                         rtlsim::EvalEngine engine, uint64_t cycles)
{
    rtlsim::Simulator sim(flat, engine);
    auto t0 = std::chrono::steady_clock::now();
    sim.run(cycles);
    EnginePoint point;
    point.wallMs = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    point.cyclesPerSec =
        point.wallMs > 0.0 ? double(cycles) / (point.wallMs / 1e3)
                           : 0.0;
    point.nodesEvaluated = sim.nodesEvaluated();
    point.nodesSkipped = sim.nodesSkipped();
    uint64_t h = 1469598103934665603ull;
    for (size_t i = 0; i < sim.numSignals(); ++i) {
        h ^= sim.peekIdx(int(i));
        h *= 1099511628211ull;
    }
    point.signature = h;
    return point;
}

/**
 * Analytic lower-bound rate model (the ablation companion of the
 * executed sweeps): per target cycle the boundary is crossed
 * `crossings` times, each paying flight latency plus serialization,
 * plus a few host cycles of FSM work.
 */
inline double
analyticRateMhz(const transport::LinkParams &link, unsigned bits,
                unsigned crossings, double bitstream_mhz,
                double host_cycles_per_crossing = 3.0)
{
    double per_cycle_ns =
        crossings * (transport::tokenLatencyNs(link) +
                     transport::tokenSerNs(link, bits) +
                     host_cycles_per_crossing * 1000.0 /
                         bitstream_mhz);
    return 1000.0 / per_cycle_ns;
}

} // namespace fireaxe::bench

#endif // FIREAXE_BENCH_SWEEP_COMMON_HH
