/**
 * @file
 * Figure 12: PCIe peer-to-peer performance sweeps (AWS EC2 F1), plus
 * the §IV-A host-managed-PCIe ceiling.
 *
 * Expected shape: same characteristics as the QSFP sweep — exact
 * flat, fast ~2x until serialization dominates — but overall ~1.5x
 * slower due to the higher inter-FPGA latency, topping out around
 * 1 MHz. The host-managed path is capped near 26.4 kHz by driver
 * overhead regardless of width or frequency.
 */

#include <iostream>

#include "base/table.hh"
#include "sweep_common.hh"

using namespace fireaxe;
using namespace fireaxe::bench;
using ripper::PartitionMode;

namespace {

struct WidthStep
{
    unsigned tilesOut;
    unsigned traceWords;
};

const WidthStep widthSteps[] = {
    {1, 0}, {2, 0}, {4, 0}, {4, 2}, {4, 6}, {4, 12}, {4, 24},
};

} // namespace

int
main()
{
    auto pcie = transport::pciePeerToPeer();
    auto qsfp = transport::qsfpAurora();
    const unsigned total_tiles = 4;

    for (double mhz : {10.0, 30.0, 50.0, 70.0, 90.0}) {
        TextTable table({"interface (bits)", "exact (MHz)",
                         "fast (MHz)", "fast vs exact",
                         "QSFP fast (MHz)"});
        for (const auto &step : widthSteps) {
            auto exact = runTilePartitionSweep(
                total_tiles, step.tilesOut, step.traceWords,
                PartitionMode::Exact, pcie, mhz);
            auto fast = runTilePartitionSweep(
                total_tiles, step.tilesOut, step.traceWords,
                PartitionMode::Fast, pcie, mhz);
            auto qsfp_fast = runTilePartitionSweep(
                total_tiles, step.tilesOut, step.traceWords,
                PartitionMode::Fast, qsfp, mhz);
            table.addRow(
                {std::to_string(exact.interfaceBits),
                 TextTable::num(exact.simRateMhz, 3),
                 TextTable::num(fast.simRateMhz, 3),
                 TextTable::num(fast.simRateMhz / exact.simRateMhz,
                                2) +
                     "x",
                 TextTable::num(qsfp_fast.simRateMhz, 3)});
        }
        std::cout << "=== Figure 12: PCIe peer-to-peer sweep @ "
                  << mhz << " MHz bitstream ===\n";
        table.print(std::cout);
        std::cout << "\n";
    }

    // §IV-A: host-managed PCIe through the C++ drivers.
    auto host = transport::hostManagedPcie();
    TextTable host_table({"interface (bits)", "exact (kHz)",
                          "fast (kHz)"});
    for (const auto &step : {widthSteps[0], widthSteps[4]}) {
        auto exact = runTilePartitionSweep(
            total_tiles, step.tilesOut, step.traceWords,
            PartitionMode::Exact, host, 90.0, 60);
        auto fast = runTilePartitionSweep(
            total_tiles, step.tilesOut, step.traceWords,
            PartitionMode::Fast, host, 90.0, 60);
        host_table.addRow(
            {std::to_string(exact.interfaceBits),
             TextTable::num(exact.simRateMhz * 1000.0, 1),
             TextTable::num(fast.simRateMhz * 1000.0, 1)});
    }
    std::cout << "=== Host-managed PCIe (driver-limited, §IV-A: "
                 "max ~26.4 kHz) ===\n";
    host_table.print(std::cout);
    return 0;
}
