/**
 * @file
 * Section V-B: splitting a large OoO core (GC40 BOOM scale) across
 * two FPGAs in exact-mode.
 *
 * The monolithic core exceeds one U250's routable LUTs (the paper's
 * bitstream build "fails due to congestion"); the backend partition
 * uses ~63% of the FPGA and the frontend+memory side ~18%, with over
 * 7000 bits crossing the partition interface. The paper reports an
 * overall simulation rate of 0.2 MHz.
 */

#include <iostream>

#include "base/table.hh"
#include "passes/resources.hh"
#include "platform/executor.hh"
#include "platform/fpga.hh"
#include "ripper/partition.hh"
#include "target/big_core.hh"
#include "transport/link.hh"

using namespace fireaxe;
using namespace fireaxe::platform;
using namespace fireaxe::ripper;

int
main()
{
    auto cfg = target::gc40BigCoreConfig();
    auto core = target::buildBigCore(cfg);
    auto u250 = alveoU250(10.0);

    auto whole = passes::estimateResources(core);
    auto backend =
        passes::estimateResources(core, "BigCoreBackend");
    auto frontend =
        passes::estimateResources(core, "BigCoreFrontend");

    PartitionSpec spec;
    spec.mode = PartitionMode::Exact;
    spec.groups.push_back({"backend", {"backend"}, 1});
    auto plan = partition(core, spec);

    MultiFpgaSim sim(plan, {alveoU250(10.0), alveoU250(10.0)},
                     transport::qsfpAurora());
    auto result = sim.run(300);

    TextTable table({"metric", "value", "paper"});
    table.addRow(
        {"monolithic fits one U250?",
         platform::fits(u250, whole) ? "yes" : "no (congestion)",
         "no (build fails)"});
    table.addRow({"backend LUT utilization",
                  TextTable::num(lutUtilization(u250, backend) *
                                     100.0,
                                 1) +
                      "%",
                  "63%"});
    table.addRow({"frontend+L1 LUT utilization",
                  TextTable::num(lutUtilization(u250, frontend) *
                                     100.0,
                                 1) +
                      "%",
                  "18%"});
    table.addRow({"partition interface width",
                  std::to_string(
                      target::bigCoreInterfaceBits(cfg)) +
                      " bits",
                  "> 7000 bits"});
    table.addRow({"simulation rate",
                  TextTable::num(result.simRateMhz(), 3) + " MHz",
                  "0.2 MHz"});

    std::cout << "=== Section V-B: GC40 split core across two "
                 "FPGAs (exact-mode) ===\n";
    table.print(std::cout);
    if (result.deadlocked)
        std::cout << "WARNING: simulation deadlocked\n";
    return result.deadlocked ? 1 : 0;
}
