/**
 * @file
 * Static-analysis benchmark: predicted-vs-measured FMR over every
 * shipped target, plus the analyzer's own latency.
 *
 * For each target the bench runs the cut-cost analyzer (pure static
 * prediction, no simulation), then actually co-simulates the same
 * plan and reads the measured per-partition FMR back from telemetry.
 * The printed table is the EXPERIMENTS.md predicted-vs-measured
 * table; `--json FILE` emits one row per target for tooling. The
 * analyzer must stay under 100 ms per target (the CI lint-smoke
 * gate) — the `analyze_ms` column makes regressions visible here
 * too.
 *
 * Usage: bench_analyze [--cycles N] [--json FILE]
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analyze/cutcost.hh"
#include "base/logging.hh"
#include "base/table.hh"
#include "obs/json.hh"
#include "platform/executor.hh"
#include "platform/fpga.hh"
#include "ripper/partition.hh"
#include "svc/targets.hh"
#include "transport/link.hh"

using namespace fireaxe;

int
main(int argc, char **argv)
{
    uint64_t cycles = 2000;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (!strcmp(argv[i], "--cycles") && i + 1 < argc)
            cycles = std::strtoull(argv[++i], nullptr, 10);
        else if (!strcmp(argv[i], "--json") && i + 1 < argc)
            json_path = argv[++i];
        else
            fatal("usage: bench_analyze [--cycles N] [--json FILE]");
    }

    TextTable table({"target", "predicted FMR lb", "measured FMR",
                     "ratio", "top blocker", "agrees", "analyze_ms"});
    std::ostringstream rows;
    obs::JsonWriter rw(rows);
    rw.beginArray();

    for (const auto &t : svc::targetRegistry()) {
        auto circuit = t.build();
        auto plan = ripper::partition(circuit, t.spec(circuit));
        analyze::CutCostOptions copts; // qsfp-aurora @ 50 MHz
        auto cost = analyze::analyzeCutCost(plan, copts);

        platform::MultiFpgaSim sim(
            plan,
            std::vector<platform::FpgaSpec>(plan.partitions.size(),
                                            platform::alveoU250(50.0)),
            transport::qsfpAurora());
        sim.setTelemetry({});
        auto result = sim.run(cycles);
        if (result.deadlocked)
            fatal("bench_analyze: '", t.name, "' deadlocked");

        std::vector<double> fmrs(plan.partitionNames.size(), 0.0);
        double measured = 0.0;
        size_t slowest = 0;
        for (size_t p = 0; p < plan.partitionNames.size(); ++p) {
            fmrs[p] = result.metrics.gauge(
                "part." + plan.partitionNames[p] + ".fmr");
            if (fmrs[p] > measured) {
                measured = fmrs[p];
                slowest = p;
            }
        }

        // Agreement: some measured-slowest partition's predicted
        // blocker sits in the top predicted-chain tie set. Ties on
        // both sides are real — symmetric cuts (fig2) pace both
        // partitions identically, so partitions within 2% of the
        // max count as slowest.
        const std::string &blocker =
            cost.partitions[slowest].blockingChannel;
        bool agrees = false;
        for (size_t p = 0; p < fmrs.size(); ++p) {
            if (fmrs[p] < measured * 0.98)
                continue;
            for (const auto &c : cost.channels)
                if (!cost.channels.empty() &&
                    c.chainNs == cost.channels.front().chainNs &&
                    c.name == cost.partitions[p].blockingChannel)
                    agrees = true;
        }

        double ratio =
            cost.predictedFmrLb > 0.0 ? measured / cost.predictedFmrLb
                                      : 0.0;
        char pred[32], meas[32], rat[32], ms[32];
        snprintf(pred, sizeof(pred), "%.1f", cost.predictedFmrLb);
        snprintf(meas, sizeof(meas), "%.1f", measured);
        snprintf(rat, sizeof(rat), "%.2fx", ratio);
        snprintf(ms, sizeof(ms), "%.2f", cost.analysisMs);
        table.addRow({t.name, pred, meas, rat, blocker,
                      agrees ? "yes" : "NO", ms});

        rw.beginObject();
        rw.key("target");
        rw.value(std::string(t.name));
        rw.key("predicted_fmr_lb");
        rw.value(cost.predictedFmrLb);
        rw.key("measured_fmr");
        rw.value(measured);
        rw.key("ratio");
        rw.value(ratio);
        rw.key("top_blocker");
        rw.value(blocker);
        rw.key("agrees");
        rw.value(agrees);
        rw.key("analyze_ms");
        rw.value(cost.analysisMs);
        rw.key("within_2x");
        rw.value(ratio >= 1.0 && ratio <= 2.0);
        rw.endObject();
    }
    rw.endArray();

    std::cout << "=== predicted vs measured FMR (" << cycles
              << " target cycles, qsfp-aurora @ 50 MHz) ===\n";
    table.print(std::cout);

    if (!json_path.empty()) {
        std::ofstream os(json_path);
        os << rows.str() << "\n";
    }
    return 0;
}
