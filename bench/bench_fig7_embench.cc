/**
 * @file
 * Figure 7: Embench runtimes for Large BOOM, GC40 BOOM and GC Xeon,
 * all normalized to a 3.4 GHz clock (the frequency the paper's Xeons
 * ran at). Expected shape: GC40 consistently beats Large BOOM
 * (+15.8% average IPC in the paper), with nettle-aes showing the
 * largest gain (~56%) and nbody the smallest (~2%); the Xeon wins
 * overall.
 */

#include <cmath>
#include <iostream>

#include "base/table.hh"
#include "uarch/core_model.hh"
#include "uarch/params.hh"

using namespace fireaxe;
using namespace fireaxe::uarch;

int
main()
{
    const double ghz = 3.4;
    CoreModel large(largeBoomParams());
    CoreModel gc40(gc40BoomParams());
    CoreModel xeon(gcXeonParams());

    TextTable table({"benchmark", "LargeBOOM (ms)", "GC40BOOM (ms)",
                     "GCXeon (ms)", "GC40/Large IPC gain"});

    double log_gain = 0.0;
    auto profiles = embenchProfiles();
    for (const auto &w : profiles) {
        auto rl = large.run(w);
        auto rg = gc40.run(w);
        auto rx = xeon.run(w);
        double gain = rg.ipc() / rl.ipc() - 1.0;
        log_gain += std::log(rg.ipc() / rl.ipc());
        table.addRow({w.name,
                      TextTable::num(rl.runtimeSeconds(ghz) * 1e3),
                      TextTable::num(rg.runtimeSeconds(ghz) * 1e3),
                      TextTable::num(rx.runtimeSeconds(ghz) * 1e3),
                      TextTable::num(gain * 100.0, 1) + "%"});
    }

    std::cout << "=== Figure 7: Embench runtimes @ " << ghz
              << " GHz ===\n";
    table.print(std::cout);
    std::cout << "average GC40-over-Large IPC gain: "
              << TextTable::num(
                     (std::exp(log_gain / profiles.size()) - 1.0) *
                         100.0,
                     1)
              << "% (paper: 15.8%)\n";
    return 0;
}
