/**
 * @file
 * Figure 10: garbage-collection-induced tail latency of a 10 us
 * periodic Go tick benchmark on the 4-core OoO SoC, across
 * GOMAXPROCS and CPU-affinity settings.
 *
 * Expected shape: GOMAXPROCS=1 shows a very high 99% tail (GC runs
 * serially with the main goroutine); with more OS threads the tail
 * collapses; and pinning all threads to a single core produces a
 * *lower* tail than spreading them (cache affinity beats parallelism
 * on a weak memory subsystem). The appendix rows reproduce the Xeon
 * NUMA corroboration: exaggerated inter-core latency worsens the
 * spread configuration.
 */

#include <iostream>

#include "base/table.hh"
#include "goruntime/gc_model.hh"

using namespace fireaxe;
using namespace fireaxe::goruntime;

int
main()
{
    TextTable table({"GOMAXPROCS", "affinity", "p95 (us)",
                     "p99 (us)", "max (us)", "GC cycles"});
    struct Point
    {
        unsigned gomaxprocs, affinity;
    };
    const Point points[] = {{1, 1}, {2, 1}, {2, 2},
                            {3, 1}, {3, 3}, {4, 1}, {4, 4}};
    for (const auto &pt : points) {
        GoGcConfig cfg;
        cfg.gomaxprocs = pt.gomaxprocs;
        cfg.affinityCores = pt.affinity;
        auto r = runGoGcBenchmark(cfg);
        table.addRow({std::to_string(pt.gomaxprocs),
                      pt.affinity == 1
                          ? "1 core (pinned)"
                          : std::to_string(pt.affinity) + " cores",
                      TextTable::num(r.p95Us, 2),
                      TextTable::num(r.p99Us, 2),
                      TextTable::num(r.maxUs, 2),
                      std::to_string(r.gcCycles)});
    }
    std::cout << "=== Figure 10: Go GC tail latency on the 4-core "
                 "OoO SoC ===\n";
    table.print(std::cout);

    // Xeon NUMA corroboration (§V-D): same benchmark, GOMAXPROCS=2
    // spread over 2 cores, with near- vs cross-NUMA communication
    // costs.
    TextTable numa({"placement", "p99 (us)"});
    GoGcConfig near;
    near.gomaxprocs = 2;
    near.affinityCores = 2;
    GoGcConfig far = near;
    far.coherenceFactor *= 1.6;
    far.ipiUs *= 2.5;
    numa.addRow({"same NUMA node",
                 TextTable::num(runGoGcBenchmark(near).p99Us, 2)});
    numa.addRow({"cross NUMA node",
                 TextTable::num(runGoGcBenchmark(far).p99Us, 2)});
    std::cout << "\n=== Xeon NUMA corroboration (GOMAXPROCS=2) ===\n";
    numa.print(std::cout);
    return 0;
}
