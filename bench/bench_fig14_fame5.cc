/**
 * @file
 * Figure 14: amortizing inter-FPGA communication latency with
 * FAME-5. All N BOOM-like tiles of a bus SoC are partitioned onto
 * one FPGA (fixed at 15 MHz) and multi-threaded with FAME-5, while
 * the SoC-subsystem FPGA sweeps 20..30 MHz.
 *
 * Expected shape: scaling from 1 to 6 threaded tiles degrades the
 * simulation rate by less than 2x, because the inter-FPGA latency is
 * paid once per target cycle regardless of the thread count — even
 * though the token payload (and thus serialization time) grows
 * linearly with the number of tiles.
 */

#include <iostream>

#include "base/table.hh"
#include "platform/executor.hh"
#include "platform/fpga.hh"
#include "ripper/partition.hh"
#include "target/bus_soc.hh"
#include "transport/link.hh"

using namespace fireaxe;
using namespace fireaxe::platform;
using namespace fireaxe::ripper;

namespace {

double
fame5RateMhz(unsigned tiles, double soc_mhz)
{
    target::BusSocConfig cfg;
    cfg.numTiles = tiles;
    cfg.memWords = 256;
    auto soc = target::buildBusSoc(cfg);

    PartitionSpec spec;
    spec.mode = PartitionMode::Exact;
    PartitionGroupSpec group;
    group.name = "tiles";
    group.instancePaths = target::busSocTilePaths(tiles);
    group.fame5Threads = tiles;
    spec.groups.push_back(group);
    auto plan = partition(soc, spec);

    MultiFpgaSim sim(plan,
                     {alveoU250(soc_mhz), alveoU250(15.0)},
                     transport::qsfpAurora());
    auto result = sim.run(400);
    return result.deadlocked ? 0.0 : result.simRateMhz();
}

} // namespace

int
main()
{
    TextTable table({"FAME-5 tiles", "SoC @ 20 MHz", "SoC @ 25 MHz",
                     "SoC @ 30 MHz", "boundary bits"});
    for (unsigned tiles = 1; tiles <= 6; ++tiles) {
        // Boundary width grows linearly with the tile count.
        target::BusSocConfig cfg;
        cfg.numTiles = tiles;
        auto soc = target::buildBusSoc(cfg);
        PartitionSpec spec;
        spec.groups.push_back(
            {"tiles", target::busSocTilePaths(tiles), tiles});
        auto plan = partition(soc, spec);

        table.addRow({std::to_string(tiles),
                      TextTable::num(fame5RateMhz(tiles, 20.0), 3),
                      TextTable::num(fame5RateMhz(tiles, 25.0), 3),
                      TextTable::num(fame5RateMhz(tiles, 30.0), 3),
                      std::to_string(
                          plan.feedback.interfaceWidths[1])});
    }
    std::cout << "=== Figure 14: FAME-5 multithreaded tiles, tile "
                 "FPGA fixed at 15 MHz ===\n";
    table.print(std::cout);
    std::cout << "(1 -> 6 tiles should degrade the rate by less "
                 "than 2x)\n";
    return 0;
}
