/**
 * @file
 * Table II: simulator validation. Three SoCs are run to completion
 * monolithically, in exact-mode, and in fast-mode, and the cycle
 * counts compared:
 *  - a Rocket-like core tile running a Linux-boot-scale instruction
 *    stream,
 *  - the Sha3 accelerator performing an encryption-style operation,
 *  - the Gemmini accelerator performing a convolution-style
 *    operation.
 *
 * Expected result: exact-mode matches the monolithic count exactly
 * ("No Error"); fast-mode shows a small error whose magnitude tracks
 * memory-latency sensitivity (Sha3 largest, Gemmini smallest).
 */

#include <cmath>
#include <iostream>

#include "base/table.hh"
#include "platform/executor.hh"
#include "platform/fpga.hh"
#include "ripper/partition.hh"
#include "target/accelerators.hh"
#include "transport/link.hh"

using namespace fireaxe;
using namespace fireaxe::platform;
using namespace fireaxe::ripper;

namespace {

uint64_t
monolithicDone(const firrtl::Circuit &soc, uint64_t limit)
{
    uint64_t done = 0;
    runMonolithic(
        soc, nullptr,
        [&](rtlsim::Simulator &sim, unsigned, uint64_t cycle) {
            if (done == 0 && sim.peek("done"))
                done = cycle;
        },
        limit);
    return done;
}

uint64_t
partitionedDone(const firrtl::Circuit &soc, PartitionMode mode,
                uint64_t limit)
{
    PartitionSpec spec;
    spec.mode = mode;
    spec.groups.push_back({"accel", {"accel"}, 1});
    auto plan = partition(soc, spec);
    MultiFpgaSim sim(plan, {alveoU250(30.0), alveoU250(30.0)},
                     transport::qsfpAurora());
    uint64_t done = 0;
    sim.setMonitor(0, [&](rtlsim::Simulator &s, unsigned,
                          uint64_t cycle) {
        if (done == 0 && s.peek("done"))
            done = cycle;
    });
    sim.setStopCondition([&]() { return done != 0; });
    sim.init();
    sim.run(limit);
    return done;
}

std::string
errorPercent(uint64_t mono, uint64_t other)
{
    if (other == mono)
        return "No Error";
    double err = std::abs(double(other) - double(mono)) /
                 double(mono) * 100.0;
    return TextTable::num(err, 2) + "%";
}

} // namespace

int
main()
{
    TextTable table({"target (workload)", "Monolithic (cycles)",
                     "Exact-Mode |Error|", "Fast-Mode |Error|"});

    struct Case
    {
        const char *name;
        firrtl::Circuit soc;
        uint64_t limit;
    };
    std::vector<Case> cases;
    cases.push_back(
        {"Rocket tile (boot)", target::buildBootSoc({20000, 256}),
         60000});
    cases.push_back(
        {"Sha3Accel (encryption)", target::buildSha3Soc({16, 440}),
         4000});
    cases.push_back({"Gemmini (convolution)",
                     target::buildGemminiSoc({12, 4, 17000}),
                     40000});

    for (auto &c : cases) {
        uint64_t mono = monolithicDone(c.soc, c.limit);
        uint64_t exact =
            partitionedDone(c.soc, PartitionMode::Exact, c.limit);
        uint64_t fast =
            partitionedDone(c.soc, PartitionMode::Fast, c.limit);
        table.addRow({c.name, std::to_string(mono),
                      errorPercent(mono, exact),
                      errorPercent(mono, fast)});
    }

    std::cout << "=== Table II: monolithic vs partitioned cycle "
                 "counts ===\n";
    table.print(std::cout);
    return 0;
}
