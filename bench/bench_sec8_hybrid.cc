/**
 * @file
 * Section VIII-A: the hybrid cloud/on-premises usage model.
 *
 * Quantifies the paper's three decision factors:
 *  1. capacity — usable LUTs of a local U250 vs a cloud VU9P (the
 *     paper reports ~50% more locally due to the cloud shell);
 *  2. performance — the same partitioned simulation over QSFP
 *     (on-prem) vs peer-to-peer PCIe (cloud);
 *  3. cost — pay-as-you-go cloud hours vs upfront board purchase,
 *     with the break-even campaign size.
 *
 * The recommended workflow follows: develop interactively on-prem,
 * burst large benchmark campaigns to the cloud.
 */

#include <iostream>

#include "base/table.hh"
#include "platform/cost.hh"
#include "platform/executor.hh"
#include "platform/fpga.hh"
#include "ripper/partition.hh"
#include "target/bus_soc.hh"
#include "transport/link.hh"

using namespace fireaxe;
using namespace fireaxe::platform;

int
main()
{
    // Factor 1: capacity.
    auto u250 = alveoU250(60.0);
    auto vu9p = awsF1Vu9p(60.0);
    TextTable capacity({"board", "usable LUTs", "vs cloud"});
    capacity.addRow({u250.board, std::to_string(u250.lutCapacity),
                     TextTable::num(double(u250.lutCapacity) /
                                        vu9p.lutCapacity,
                                    2) +
                         "x"});
    capacity.addRow({vu9p.board, std::to_string(vu9p.lutCapacity),
                     "1.00x"});
    std::cout << "=== Capacity (paper: U250 ~50% more usable LUTs) "
                 "===\n";
    capacity.print(std::cout);

    // Factor 2: performance on the same partitioned target.
    target::BusSocConfig cfg;
    cfg.numTiles = 4;
    cfg.memWords = 256;
    auto soc = target::buildBusSoc(cfg);
    ripper::PartitionSpec spec;
    spec.mode = ripper::PartitionMode::Fast;
    spec.groups.push_back(
        {"tiles", target::busSocTilePaths(2), 1});
    auto plan = ripper::partition(soc, spec);

    auto rate = [&](const FpgaSpec &board,
                    const transport::LinkParams &link) {
        MultiFpgaSim sim(plan, {board, board}, link);
        return sim.run(400).simRateMhz();
    };
    double on_prem = rate(u250, transport::qsfpAurora());
    double cloud = rate(vu9p, transport::pciePeerToPeer());

    TextTable perf({"deployment", "rate (MHz)", "relative"});
    perf.addRow({"on-prem U250 + QSFP", TextTable::num(on_prem, 3),
                 TextTable::num(on_prem / cloud, 2) + "x"});
    perf.addRow({"cloud F1 + PCIe p2p", TextTable::num(cloud, 3),
                 "1.00x"});
    std::cout << "\n=== Performance (paper: ~1.5x for on-prem) ===\n";
    perf.print(std::cout);

    // Factor 3: cost vs campaign size.
    DeploymentCosts costs;
    costs.onPremSpeedup = on_prem / cloud;
    TextTable money({"campaign (cloud sim-hours)", "cloud ($)",
                     "on-prem ($)", "cheaper"});
    for (double hours : {40.0, 400.0, 4000.0, 40000.0}) {
        auto c = projectCampaign(hours, 2, costs);
        money.addRow({TextTable::num(hours, 0),
                      TextTable::num(c.cloudUsd, 0),
                      TextTable::num(c.onPremUsd, 0),
                      c.cloudUsd < c.onPremUsd ? "cloud"
                                               : "on-prem"});
    }
    auto be = projectCampaign(1.0, 2, costs);
    std::cout << "\n=== Cost (2 FPGAs; break-even at "
              << TextTable::num(be.breakEvenHours, 0)
              << " cloud sim-hours) ===\n";
    money.print(std::cout);
    return 0;
}
